//! The analysis driver tying the pipeline together (paper Fig. 10):
//! information collection → per-root path-sensitive code analysis
//! (parallelized across roots with a work-stealing scheduler) → bug
//! filtering.

use crate::collector;
use crate::config::AnalysisConfig;
use crate::filter;
use crate::path::{ExploreResult, Explorer, ForkStats, SharedTables};
use crate::registry::CheckerRegistry;
use crate::report::{BugReport, DegradedRoot, PossibleBug};
use crate::stats::{AnalysisStats, BudgetNote};
use crate::telemetry::{Span, Telemetry, TelemetrySink, TelemetrySnapshot};
use crate::typestate::Checker;
use crate::validate::ValidationCache;
use pata_ir::{FuncId, Module};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// The result of a full PATA run.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// Final validated bug reports.
    pub reports: Vec<BugReport>,
    /// The surviving candidates behind the reports.
    pub real_bugs: Vec<PossibleBug>,
    /// Aggregate statistics (Table 5 counters).
    pub stats: AnalysisStats,
    /// The analyzed module, with interface functions marked.
    pub module: Module,
    /// Telemetry collected during this run; empty unless
    /// [`AnalysisConfig::telemetry`] is set. See
    /// [`TelemetrySnapshot::to_json`] for the stable wire format.
    pub telemetry: TelemetrySnapshot,
    /// Per-root budget-exhaustion detail (in root order): which roots hit
    /// `max_insts`/`max_paths`, and whether their verdicts come from the
    /// deterministic cache-free re-run. Empty when no root was truncated.
    pub budget_notes: Vec<BudgetNote>,
    /// Roots the fault-containment ladder quarantined or demoted, sorted by
    /// `(root, stage)`. Empty on a healthy run.
    pub degraded: Vec<DegradedRoot>,
}

/// A root the fault-containment ladder could not complete normally: the
/// structured record of a quarantine (panic caught) or demotion (resource
/// budget tripped, bounded re-run kept). Stats from a quarantined attempt
/// are dropped entirely — partial progress varies with the cache and
/// thread configuration, while the failure record itself is deterministic.
#[derive(Debug, Clone)]
pub(crate) struct RootFailure {
    /// Root function name.
    pub(crate) root: String,
    /// Pipeline stage where the fault hit (`"explore"`).
    pub(crate) stage: &'static str,
    /// The panic payload (quarantine) or tripped budget (demotion).
    pub(crate) reason: String,
    /// `"quarantined"` or `"demoted"`.
    pub(crate) action: &'static str,
}

impl RootFailure {
    pub(crate) fn to_degraded(&self) -> DegradedRoot {
        DegradedRoot {
            root: self.root.clone(),
            stage: self.stage.to_string(),
            reason: self.reason.clone(),
            action: self.action.to_string(),
        }
    }
}

/// One root's exploration result — the per-root granularity the session
/// layer caches and persists (candidates, exploration stats and budget note
/// for exactly one interface function).
#[derive(Debug)]
pub(crate) struct RootRun {
    /// Index into the explored root slice (merge key: results are combined
    /// in root order regardless of scheduling).
    pub(crate) index: usize,
    /// Raw stage-1 candidates from this root.
    pub(crate) candidates: Vec<PossibleBug>,
    /// Exploration stats accumulated by this root alone.
    pub(crate) stats: AnalysisStats,
    /// Budget-exhaustion note, if the root was truncated.
    pub(crate) note: Option<BudgetNote>,
    /// Set when the fault-containment ladder intervened: `"quarantined"`
    /// (candidates empty, verdicts absent) or `"demoted"` (candidates from
    /// the bounded re-run).
    pub(crate) failure: Option<RootFailure>,
}

/// The PATA analysis engine.
///
/// This is the internal pipeline driver. Construct analyses through
/// [`crate::AnalysisSession`] — the one public entry point — rather than
/// through the deprecated constructors kept here for compatibility:
///
/// ```
/// use pata_core::{AnalysisConfig, AnalysisSession};
///
/// let module = pata_cc::compile_one("m.c", "void root(void) { }").unwrap();
/// let session = AnalysisSession::new(AnalysisConfig::default());
/// let outcome = session.analyze_module(module);
/// assert_eq!(outcome.stats.roots, 1);
/// ```
#[derive(Debug)]
pub struct Pata {
    config: AnalysisConfig,
    /// Stage-2 conjunction verdicts, shared across every `analyze` call on
    /// this analyzer (and, being `Sync`, across threads).
    cache: Arc<ValidationCache>,
    /// Checker factories; [`Pata::analyze`] instantiates checkers through
    /// it so out-of-tree checkers registered by embedders run alongside the
    /// built-ins.
    registry: CheckerRegistry,
    /// Metrics registry. Cheap when `config.telemetry` is off: every
    /// recording site branches on one relaxed atomic load.
    telemetry: Arc<Telemetry>,
}

impl Pata {
    /// Creates an engine with `config` and the built-in checker registry.
    #[doc(hidden)]
    #[deprecated(
        since = "0.3.0",
        note = "use `AnalysisSession::new` — the session API is the one public entry point"
    )]
    pub fn new(config: AnalysisConfig) -> Self {
        Self::create(config)
    }

    /// Creates an engine with a custom [`CheckerRegistry`].
    #[doc(hidden)]
    #[deprecated(
        since = "0.3.0",
        note = "use `AnalysisSession::with_registry` — the session API is the one public entry point"
    )]
    pub fn with_registry(config: AnalysisConfig, registry: CheckerRegistry) -> Self {
        Self::create_with_registry(config, registry)
    }

    /// Internal constructor backing [`crate::AnalysisSession`].
    pub(crate) fn create(config: AnalysisConfig) -> Self {
        Self::create_with_registry(config, CheckerRegistry::with_builtins())
    }

    /// Internal constructor backing [`crate::AnalysisSession::with_registry`].
    pub(crate) fn create_with_registry(config: AnalysisConfig, registry: CheckerRegistry) -> Self {
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        Pata {
            config,
            cache: Arc::new(ValidationCache::new()),
            registry,
            telemetry,
        }
    }

    /// Instantiates the configured checkers through the registry.
    pub(crate) fn instantiate_checkers(&self) -> Vec<Box<dyn Checker>> {
        self.registry.instantiate_for(&self.config.checkers)
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The analyzer's shared validation cache (persists across runs).
    pub fn validation_cache(&self) -> &Arc<ValidationCache> {
        &self.cache
    }

    /// The analyzer's checker registry.
    pub fn registry(&self) -> &CheckerRegistry {
        &self.registry
    }

    /// The analyzer's telemetry registry. Metrics accumulate across
    /// `analyze` calls; each [`AnalysisOutcome`] carries a snapshot taken
    /// at the end of its run.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Runs the full pipeline on `module`.
    pub fn analyze(&self, module: Module) -> AnalysisOutcome {
        let checkers = self.registry.instantiate_for(&self.config.checkers);
        self.analyze_with(module, &checkers)
    }

    /// Runs the pipeline with custom checker instances (e.g. user-defined
    /// FSMs; see `examples/custom_checker.rs`).
    pub fn analyze_with(
        &self,
        mut module: Module,
        checkers: &[Box<dyn Checker>],
    ) -> AnalysisOutcome {
        let start = Instant::now();
        let tel_on = self.telemetry.is_enabled();

        // P1: information collection.
        let span = Span::start(tel_on, "stage.collect");
        let (roots, call_graph) = collector::mark_interfaces_with_graph(&mut module);
        if tel_on {
            self.telemetry.record_direct(|sink| {
                span.finish(sink);
                sink.add("collect.roots", roots.len() as u64);
                sink.add("collect.call_edges", call_graph.edge_count() as u64);
            });
        }

        // P2: per-root path-sensitive analysis.
        let span = Span::start(tel_on, "stage.explore");
        let mut stats = AnalysisStats {
            files_analyzed: module.files().len() as u64,
            loc_analyzed: module.total_loc(),
            ..AnalysisStats::default()
        };
        let (candidates, budget_notes, mut degraded) =
            self.run_roots(&module, checkers, &roots, &mut stats);
        if tel_on {
            self.telemetry.record_direct(|sink| span.finish(sink));
        }

        // P3: bug filtering (dedup + path validation).
        let span = Span::start(tel_on, "stage.filter");
        let cache = self.config.validation_cache.then(|| &*self.cache);
        let result = filter::filter(
            &module,
            candidates,
            self.config.validate_paths,
            cache,
            Some(&self.telemetry),
            &mut stats,
        );
        if tel_on {
            self.telemetry.record_direct(|sink| span.finish(sink));
        }
        degraded.extend(result.failures);
        degraded.sort();
        stats.time = start.elapsed();
        AnalysisOutcome {
            reports: result.reports,
            real_bugs: result.real_bugs,
            stats,
            module,
            telemetry: self.telemetry.snapshot(),
            budget_notes,
            degraded,
        }
    }

    /// Runs phases P1 + P2 only, returning the marked module, the raw
    /// (pre-dedup, pre-validation) candidates and the exploration stats —
    /// the exact input [`filter::filter`] consumes. Lets benchmarks and
    /// experiments time stage-2 validation in isolation.
    pub fn collect_candidates(
        &self,
        mut module: Module,
    ) -> (Module, Vec<PossibleBug>, AnalysisStats) {
        let checkers: Vec<Box<dyn Checker>> = self
            .config
            .checkers
            .iter()
            .map(|k| k.instantiate())
            .collect();
        let roots = collector::mark_interfaces(&mut module);
        let mut stats = AnalysisStats {
            files_analyzed: module.files().len() as u64,
            loc_analyzed: module.total_loc(),
            ..AnalysisStats::default()
        };
        let (candidates, _notes, _degraded) =
            self.run_roots(&module, &checkers, &roots, &mut stats);
        (module, candidates, stats)
    }

    fn run_roots(
        &self,
        module: &Module,
        checkers: &[Box<dyn Checker>],
        roots: &[FuncId],
        stats: &mut AnalysisStats,
    ) -> (Vec<PossibleBug>, Vec<BudgetNote>, Vec<DegradedRoot>) {
        let runs = self.explore_roots(module, checkers, roots, stats);
        let mut all = Vec::new();
        let mut notes = Vec::new();
        let mut degraded = Vec::new();
        for run in runs {
            all.extend(run.candidates);
            notes.extend(run.note);
            degraded.extend(run.failure.as_ref().map(RootFailure::to_degraded));
        }
        (all, notes, degraded)
    }

    /// Explores `roots` (any subset of the module's interface functions)
    /// and returns each root's result separately, in root order. This is
    /// the incremental re-analysis entry point: the session layer passes
    /// only the *dirty* roots and splices cached results in for the rest.
    /// Aggregate exploration counters are merged into `stats` exactly as a
    /// full run would.
    pub(crate) fn explore_roots(
        &self,
        module: &Module,
        checkers: &[Box<dyn Checker>],
        roots: &[FuncId],
        stats: &mut AnalysisStats,
    ) -> Vec<RootRun> {
        let hw_threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let threads = hw_threads.min(roots.len().max(1));
        let tel_on = self.telemetry.is_enabled();
        let base = stats.clone();

        // Intra-root parallelism: when there are more workers than roots,
        // the spare workers fork into the roots' DFS trees as *cache
        // warmers* — same root, a forced branch prefix steering them into a
        // region the owner reaches late, results discarded. They only
        // populate the shared subsumption/memo tables, which the owners
        // then hit; reports and stats come solely from the owners, so the
        // outcome is bit-identical to an unforked run by replay exactness.
        let spare = hw_threads.saturating_sub(roots.len().max(1));
        let fork_depth = self.config.fork_depth;
        let fork_on = spare > 0
            && !roots.is_empty()
            && fork_depth > 0
            && (self.config.exploration_cache || self.config.callee_memo);
        let shared = if fork_on {
            Some(Arc::new(SharedTables::new()))
        } else {
            None
        };
        // At most 2^depth - 1 useful prefixes per root (the owner covers
        // the all-`false` region first on its own).
        let helper_count = if fork_on {
            spare.min(roots.len() * ((1usize << fork_depth.min(4)) - 1))
        } else {
            0
        };

        let runs = std::thread::scope(|scope| {
            for j in 0..helper_count {
                let shared_t = Arc::clone(shared.as_ref().unwrap());
                let root = roots[j % roots.len()];
                let prefix = helper_prefix(j / roots.len(), fork_depth);
                let config = &self.config;
                scope.spawn(move || {
                    // `thread::scope` re-raises a spawned thread's panic at
                    // the scope exit, which would defeat the per-root
                    // quarantine — so a helper (which runs the same
                    // arbitrary checker code as the owner, results
                    // discarded) contains its own panics. The shared-table
                    // shards tolerate the poisoned locks this can leave.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        let mut helper = Explorer::new(module, config, checkers, root);
                        helper.use_shared_tables(shared_t);
                        helper.set_fork_helper(prefix);
                        // Candidates and stats are intentionally dropped.
                        let _ = helper.explore();
                    }));
                });
            }
            self.run_owners(module, checkers, roots, stats, threads, shared.as_ref())
        });
        if tel_on && helper_count > 0 {
            self.telemetry.record_direct(|sink| {
                sink.add("driver.explore.forks", helper_count as u64);
            });
        }
        if tel_on {
            self.record_exploration_counters(stats, &base);
        }
        runs
    }

    /// Runs the per-root owner explorers (sequentially or with the
    /// work-stealing scheduler) and returns their results in root order,
    /// merging every root's counters into `stats`.
    fn run_owners(
        &self,
        module: &Module,
        checkers: &[Box<dyn Checker>],
        roots: &[FuncId],
        stats: &mut AnalysisStats,
        threads: usize,
        shared: Option<&Arc<SharedTables>>,
    ) -> Vec<RootRun> {
        let tel_on = self.telemetry.is_enabled();

        if threads <= 1 || roots.len() <= 1 {
            let mut runs = Vec::with_capacity(roots.len());
            let mut sink = TelemetrySink::new();
            let mut alias_ops = [0u64; 7];
            let mut fork_total = ForkStats::default();
            for (i, &root) in roots.iter().enumerate() {
                let span = Span::start(tel_on, "explore.root");
                let (result, failure) =
                    self.run_one_root(module, checkers, root, shared, &mut sink, tel_on);
                if tel_on {
                    span.finish_labeled(&mut sink, Some(module.function(root).name().into()));
                    for (acc, n) in alias_ops.iter_mut().zip(result.alias_ops) {
                        *acc += n;
                    }
                    flush_root_fork_stats(
                        &mut sink,
                        module.function(root).name(),
                        &result.fork_stats,
                    );
                    fork_total.merge(&result.fork_stats);
                }
                *stats += &result.stats;
                runs.push(RootRun {
                    index: i,
                    candidates: result.candidates,
                    stats: result.stats,
                    note: result.budget_note,
                    failure,
                });
            }
            if tel_on {
                flush_alias_ops(&mut sink, &alias_ops);
                flush_fork_totals(&mut sink, &fork_total);
                sink.gauge_max("driver.threads", 1);
                self.telemetry.merge(sink);
            }
            // Results are ordered by root for determinism.
            return runs;
        }

        // Root-level parallelism with work stealing: roots are dealt
        // round-robin into per-worker deques; a worker pops from its own
        // queue's front and, when empty, steals from the back of another
        // worker's queue. Root costs are wildly uneven (one hot root can
        // dominate a static split), so idle workers pull the remaining work
        // instead of waiting. The task set is static — no queue ever grows —
        // so one full empty scan means the phase is done.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..roots.len() {
            lock_ok(queues[i % threads].lock()).push_back(i);
        }
        let steals = AtomicU64::new(0);
        let collected: Mutex<Vec<RootRun>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..threads {
                let queues = &queues;
                let collected = &collected;
                let steals = &steals;
                let telemetry = &self.telemetry;
                scope.spawn(move || {
                    // Per-worker telemetry shard: lock-free while the worker
                    // runs, merged into the shared registry once at exit.
                    let mut sink = TelemetrySink::new();
                    let mut alias_ops = [0u64; 7];
                    let mut fork_total = ForkStats::default();
                    loop {
                        let mut task = lock_ok(queues[w].lock()).pop_front();
                        if task.is_none() {
                            for off in 1..threads {
                                let victim = (w + off) % threads;
                                task = lock_ok(queues[victim].lock()).pop_back();
                                if task.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        let Some(i) = task else { break };
                        let span = Span::start(tel_on, "explore.root");
                        let (result, failure) = self
                            .run_one_root(module, checkers, roots[i], shared, &mut sink, tel_on);
                        if tel_on {
                            span.finish_labeled(
                                &mut sink,
                                Some(module.function(roots[i]).name().into()),
                            );
                            for (acc, n) in alias_ops.iter_mut().zip(result.alias_ops) {
                                *acc += n;
                            }
                            flush_root_fork_stats(
                                &mut sink,
                                module.function(roots[i]).name(),
                                &result.fork_stats,
                            );
                            fork_total.merge(&result.fork_stats);
                        }
                        lock_ok(collected.lock()).push(RootRun {
                            index: i,
                            candidates: result.candidates,
                            stats: result.stats,
                            note: result.budget_note,
                            failure,
                        });
                    }
                    if tel_on {
                        flush_alias_ops(&mut sink, &alias_ops);
                        flush_fork_totals(&mut sink, &fork_total);
                        if !sink.is_empty() {
                            telemetry.merge(sink);
                        }
                    }
                });
            }
        });

        let mut per_root = collected
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        // Merge in root order regardless of which worker ran what — the
        // candidate stream (and so the final report set) is identical to a
        // single-threaded run.
        per_root.sort_by_key(|run| run.index);
        for run in &per_root {
            *stats += &run.stats;
        }
        let stolen = steals.into_inner();
        stats.work_steals += stolen;
        if tel_on {
            self.telemetry.record_direct(|sink| {
                sink.gauge_max("driver.threads", threads as i64);
                sink.add("driver.work_steals", stolen);
            });
        }
        per_root
    }

    /// Explores one root under the fault-containment ladder (DESIGN.md
    /// "Fault containment & degraded reports"):
    ///
    /// 1. Full-budget attempt under `catch_unwind`. A panic — a misbehaving
    ///    checker, an injected fault — **quarantines** the root: its partial
    ///    results are dropped entirely (partial progress varies with the
    ///    cache/thread configuration; a fixed empty result keeps reports and
    ///    stats byte-identical) and a [`RootFailure`] records the payload.
    /// 2. A `deadline` / `live_bytes` budget trip **demotes** the root to a
    ///    bounded cache-free re-run (path/instruction budgets clamped, no
    ///    shared tables) whose verdicts are kept, flagged `"demoted"`. The
    ///    bounded budgets make the re-run deterministic and finite even
    ///    though the original trip was time- or memory-driven.
    /// 3. A demoted run that panics or trips a resource budget again is
    ///    quarantined.
    ///
    /// Recovery telemetry (`driver.recover.*`) lands in the caller's worker
    /// sink; the counters are exact across thread counts for a fixed fault
    /// plan, like every other counter.
    fn run_one_root(
        &self,
        module: &Module,
        checkers: &[Box<dyn Checker>],
        root: FuncId,
        shared: Option<&Arc<SharedTables>>,
        sink: &mut TelemetrySink,
        tel_on: bool,
    ) -> (ExploreResult, Option<RootFailure>) {
        let name = module.function(root).name();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut explorer = Explorer::new(module, &self.config, checkers, root);
            if let Some(t) = shared {
                explorer.use_shared_tables(Arc::clone(t));
            }
            explorer.explore()
        }));
        let result = match attempt {
            Ok(result) => result,
            Err(payload) => {
                if tel_on {
                    sink.add_labeled("driver.recover.quarantined", Some("explore".into()), 1);
                }
                let failure = RootFailure {
                    root: name.to_string(),
                    stage: "explore",
                    reason: panic_reason(payload.as_ref()),
                    action: "quarantined",
                };
                return (quarantined_result(), Some(failure));
            }
        };
        let tripped = result
            .budget_note
            .as_ref()
            .filter(|n| n.reason == "deadline" || n.reason == "live_bytes")
            .map(|n| n.reason.clone());
        let Some(reason) = tripped else {
            return (result, None);
        };
        if tel_on {
            let counter = if reason == "deadline" {
                "driver.recover.deadline_hits"
            } else {
                "driver.recover.live_bytes_hits"
            };
            sink.add(counter, 1);
        }
        // Demotion: bounded cache-free re-run. Budgets are clamped so the
        // re-run terminates quickly even for the pathological root that
        // burned the full deadline; caches/memo stay off (the cache-free
        // truncation contract of `Explorer::explore`), and the deadline and
        // ceiling stay armed so a root that cannot finish even degraded is
        // caught again.
        let mut demoted = self.config.clone();
        demoted.exploration_cache = false;
        demoted.callee_memo = false;
        demoted.fork_depth = 0;
        demoted.budget.max_paths = demoted.budget.max_paths.min(DEMOTED_MAX_PATHS);
        demoted.budget.max_insts = demoted.budget.max_insts.min(DEMOTED_MAX_INSTS);
        let retry = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            Explorer::new(module, &demoted, checkers, root).explore()
        }));
        if tel_on {
            sink.record_ns(
                "driver.recover.retry_ns",
                Some("explore".into()),
                retry.elapsed().as_nanos() as u64,
            );
        }
        match attempt {
            Ok(result) => {
                let retripped = result
                    .budget_note
                    .as_ref()
                    .is_some_and(|n| n.reason == "deadline" || n.reason == "live_bytes");
                if retripped {
                    if tel_on {
                        sink.add_labeled("driver.recover.quarantined", Some("explore".into()), 1);
                    }
                    let failure = RootFailure {
                        root: name.to_string(),
                        stage: "explore",
                        reason,
                        action: "quarantined",
                    };
                    (quarantined_result(), Some(failure))
                } else {
                    if tel_on {
                        sink.add("driver.recover.demoted", 1);
                    }
                    let failure = RootFailure {
                        root: name.to_string(),
                        stage: "explore",
                        reason,
                        action: "demoted",
                    };
                    (result, Some(failure))
                }
            }
            Err(payload) => {
                if tel_on {
                    sink.add_labeled("driver.recover.quarantined", Some("explore".into()), 1);
                }
                let failure = RootFailure {
                    root: name.to_string(),
                    stage: "explore",
                    reason: panic_reason(payload.as_ref()),
                    action: "quarantined",
                };
                (quarantined_result(), Some(failure))
            }
        }
    }

    /// Records the exploration-volume counters derived from the merged
    /// per-root statistics — once per run, as the delta against the stats
    /// at `run_roots` entry, so they stay exact for any thread count.
    fn record_exploration_counters(&self, stats: &AnalysisStats, base: &AnalysisStats) {
        self.telemetry.record_direct(|sink| {
            sink.add("path.paths", stats.paths_explored - base.paths_explored);
            sink.add("path.insts", stats.insts_processed - base.insts_processed);
            sink.add(
                "path.budget_exhausted",
                stats.budget_exhausted_roots - base.budget_exhausted_roots,
            );
            sink.add(
                "typestate.transitions",
                stats.typestates_aware - base.typestates_aware,
            );
            sink.add(
                "constraints.emitted",
                stats.constraints_aware - base.constraints_aware,
            );
            // Exploration-reuse counters. Exact for unforked runs; with
            // fork helpers warming shared tables, hit counts depend on
            // helper/owner timing (the verdicts never do).
            sink.add(
                "driver.explore.sub_hits",
                stats.exploration_cache_hits - base.exploration_cache_hits,
            );
            sink.add(
                "driver.explore.memo_hits",
                stats.callee_memo_hits - base.callee_memo_hits,
            );
            sink.add(
                "driver.explore.insts_replayed",
                stats.insts_replayed - base.insts_replayed,
            );
        });
    }
}

/// Demoted-run clamp on completed paths per root.
const DEMOTED_MAX_PATHS: usize = 256;
/// Demoted-run clamp on instructions processed per root.
const DEMOTED_MAX_INSTS: usize = 50_000;

/// The deterministic result recorded for a quarantined root: no candidates,
/// no counters beyond the root itself. Partial progress up to the panic
/// depends on caches, CoW mode and helper timing — dropping it entirely is
/// what keeps stats and reports byte-identical across configurations for a
/// fixed failure set.
fn quarantined_result() -> ExploreResult {
    ExploreResult {
        candidates: Vec::new(),
        stats: AnalysisStats {
            roots: 1,
            ..AnalysisStats::default()
        },
        alias_ops: [0; 7],
        budget_note: None,
        fork_stats: ForkStats::default(),
    }
}

/// Renders a caught panic payload for the failure record. Panics raised by
/// `panic!("...")` carry `String`/`&str`; anything else gets a fixed label
/// (payload types are not stable across configurations).
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Recovers a scheduler-lock guard from poisoning. The queues hold plain
/// `usize` indices and `collected` grows by whole-`RootRun` pushes, so a
/// panicking worker (already contained by `run_one_root`; this is defense
/// in depth) cannot leave either in a half-written state.
fn lock_ok<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The forced branch prefix for helper `k` at `depth`: the binary digits of
/// `k + 1` (skipping the all-`false` region the owner explores first),
/// most-significant first, cycling when `k` exceeds the prefix space.
fn helper_prefix(k: usize, depth: usize) -> Vec<bool> {
    let slots = (1usize << depth.min(4)).saturating_sub(1).max(1);
    let v = (k % slots) + 1;
    (0..depth.min(4)).rev().map(|b| (v >> b) & 1 == 1).collect()
}

/// Converts a per-worker alias-op array into labeled `alias.op` counters.
fn flush_alias_ops(sink: &mut TelemetrySink, alias_ops: &[u64; 7]) {
    for (i, &name) in crate::path::ALIAS_OP_NAMES.iter().enumerate() {
        if alias_ops[i] > 0 {
            sink.add_labeled("alias.op", Some(name.into()), alias_ops[i]);
        }
    }
}

/// Per-root fork counters, labeled by root name so `--profile` can show
/// forks and copied bytes per slow root. Totals come from summing the
/// labels (`TelemetrySnapshot::counter_sum`), so no unlabeled counter with
/// the same name is ever emitted.
fn flush_root_fork_stats(sink: &mut TelemetrySink, root: &str, fs: &ForkStats) {
    if fs.forks == 0 {
        return;
    }
    sink.add_labeled("driver.explore.fork.forks", Some(root.into()), fs.forks);
    sink.add_labeled(
        "driver.explore.fork.bytes_copied",
        Some(root.into()),
        fs.bytes_copied,
    );
}

/// Run-wide fork aggregates: shared-vs-copied bytes and the high-water
/// gauges for undo-journal depth and live state size.
fn flush_fork_totals(sink: &mut TelemetrySink, fs: &ForkStats) {
    if fs.forks == 0 {
        return;
    }
    sink.add("driver.explore.fork.bytes_shared", fs.bytes_shared);
    sink.gauge_max(
        "driver.explore.fork.journal_depth.max",
        fs.journal_depth_max as i64,
    );
    sink.gauge_max(
        "driver.explore.fork.live_bytes.max",
        fs.live_bytes_max as i64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::BugKind;

    fn analyze(src: &str) -> AnalysisOutcome {
        let module = pata_cc::compile_one("t.c", src).unwrap();
        Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
        .analyze(module)
    }

    fn analyze_all(src: &str) -> AnalysisOutcome {
        let module = pata_cc::compile_one("t.c", src).unwrap();
        let cfg = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::all_checkers()
        };
        Pata::create(cfg).analyze(module)
    }

    fn kinds(outcome: &AnalysisOutcome) -> Vec<BugKind> {
        outcome.reports.iter().map(|r| r.kind).collect()
    }

    // ----------------------------------------------------------------
    // NPD
    // ----------------------------------------------------------------

    #[test]
    fn npd_check_then_deref_same_function() {
        let out = analyze(
            r#"
            struct dev { int *res; };
            int probe(struct dev *d) {
                if (d->res == NULL) { }
                return *d->res;
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::NullPointerDeref),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn npd_guarded_deref_not_reported() {
        let out = analyze(
            r#"
            struct dev { int *res; };
            int probe(struct dev *d) {
                if (d->res == NULL) { return -1; }
                return *d->res;
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::NullPointerDeref),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn npd_cross_function_alias_fig3() {
        // The Zephyr friend_set bug shape (paper Fig. 3): the NULL check in
        // the caller, the dereference through an alias in the callee.
        let out = analyze(
            r#"
            struct cfg_t { int frnd; };
            struct model_t { struct cfg_t *user_data; };
            void send_status(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                int x = cfg->frnd;
            }
            void friend_set(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                if (!cfg) {
                    goto send;
                }
                cfg->frnd = 1;
                return;
            send:
                send_status(model);
            }
            "#,
        );
        let npd: Vec<_> = out
            .reports
            .iter()
            .filter(|r| r.kind == BugKind::NullPointerDeref)
            .collect();
        assert!(
            !npd.is_empty(),
            "expected the Fig. 3 NPD, got {:?}",
            out.reports
        );
        assert!(npd.iter().any(|r| r.function == "send_status"));
    }

    #[test]
    fn npd_infeasible_path_filtered_fig9() {
        // Paper Fig. 9: the q-deref path requires p->f == 0 AND t->f != 0,
        // but p and t alias — infeasible, dropped by validation.
        let out = analyze(
            r#"
            struct s { int f; };
            void func(struct s *p, int *q) {
                struct s *t;
                if (q == NULL) {
                    p->f = 0;
                }
                t = p;
                if (t->f != 0) {
                    int v = *q;
                }
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::NullPointerDeref),
            "alias-aware validation must drop the Fig. 9 false bug: {:?}",
            out.reports
        );
        assert!(out.stats.false_bugs_dropped >= 1, "{:?}", out.stats);
    }

    // ----------------------------------------------------------------
    // UVA
    // ----------------------------------------------------------------

    #[test]
    fn uva_scalar_use_before_init() {
        let out = analyze(
            r#"
            int f(int c) {
                int x;
                if (c > 0) { x = 1; }
                return x;
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::UninitVarAccess),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn uva_initialized_not_reported() {
        let out = analyze("int f(void) { int x = 1; return x; }");
        assert!(!kinds(&out).contains(&BugKind::UninitVarAccess));
    }

    #[test]
    fn uva_out_param_initialization_seen() {
        let out = analyze(
            r#"
            void fill(int *out) { *out = 5; }
            int f(void) {
                int v;
                fill(&v);
                return v;
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::UninitVarAccess),
            "out-parameter init must be seen through the alias graph: {:?}",
            out.reports
        );
    }

    #[test]
    fn uva_malloc_field_never_written_fig12d() {
        // TencentOS pthread_create shape (Fig. 12d): allocate, alias, read
        // a field without initialization.
        let out = analyze(
            r#"
            struct ctl { int ktask; };
            int create(void) {
                int *stackaddr = tos_mmheap_alloc(64);
                struct ctl *the_ctl = (struct ctl *)stackaddr;
                return the_ctl->ktask;
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::UninitVarAccess),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn uva_memset_initializes_fig12d_fix() {
        let out = analyze(
            r#"
            struct ctl { int ktask; };
            int create(void) {
                int *stackaddr = tos_mmheap_alloc(64);
                memset(stackaddr, 0, 64);
                struct ctl *the_ctl = (struct ctl *)stackaddr;
                return the_ctl->ktask;
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::UninitVarAccess),
            "{:?}",
            out.reports
        );
    }

    // ----------------------------------------------------------------
    // ML
    // ----------------------------------------------------------------

    #[test]
    fn ml_error_path_leak_fig12c() {
        // RIOT make_message shape (Fig. 12c): malloc, error return without
        // free.
        let out = analyze(
            r#"
            int make_message(int n) {
                int *message = malloc(64);
                if (message == NULL) { return -1; }
                if (n < 0) { return -2; }
                free(message);
                return 0;
            }
            "#,
        );
        let ml: Vec<_> = out
            .reports
            .iter()
            .filter(|r| r.kind == BugKind::MemoryLeak)
            .collect();
        assert_eq!(ml.len(), 1, "{:?}", out.reports);
    }

    #[test]
    fn ml_returned_pointer_not_leak() {
        let out = analyze(
            r#"
            int *alloc_buf(void) {
                int *p = malloc(16);
                return p;
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::MemoryLeak),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn ml_freed_through_alias_not_leak() {
        let out = analyze(
            r#"
            void f(void) {
                int *p = malloc(16);
                int *q = p;
                free(q);
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::MemoryLeak),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn ml_caller_drops_callee_allocation() {
        let out = analyze(
            r#"
            int *make(void) { int *p = malloc(8); return p; }
            void use_it(void) {
                int *b = make();
                if (b == NULL) { return; }
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::MemoryLeak),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn ml_stored_into_field_escapes() {
        let out = analyze(
            r#"
            struct dev { int *buf; };
            void attach(struct dev *d) {
                int *p = malloc(32);
                d->buf = p;
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::MemoryLeak),
            "{:?}",
            out.reports
        );
    }

    // ----------------------------------------------------------------
    // Table 7 checkers
    // ----------------------------------------------------------------

    #[test]
    fn double_lock_reported() {
        let out = analyze_all(
            r#"
            struct lk { int x; };
            void f(struct lk *l, int c) {
                spin_lock(l);
                if (c) {
                    spin_lock(l);
                }
                spin_unlock(l);
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::DoubleLock),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn balanced_lock_not_reported() {
        let out = analyze_all(
            r#"
            struct lk { int x; };
            void f(struct lk *l) {
                spin_lock(l);
                spin_unlock(l);
                spin_lock(l);
                spin_unlock(l);
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::DoubleLock),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn division_by_zero_on_checked_zero_path() {
        let out = analyze_all(
            r#"
            int f(int d, int n) {
                if (d == 0) {
                    return n / d;
                }
                return n / d;
            }
            "#,
        );
        let dbz: Vec<_> = out
            .reports
            .iter()
            .filter(|r| r.kind == BugKind::DivisionByZero)
            .collect();
        assert_eq!(dbz.len(), 1, "{:?}", out.reports);
    }

    #[test]
    fn array_index_underflow_on_negative_path() {
        let out = analyze_all(
            r#"
            int f(int i) {
                int a[8];
                a[0] = 1;
                if (i < 0) {
                    return a[i];
                }
                return a[0];
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::ArrayIndexUnderflow),
            "{:?}",
            out.reports
        );
    }

    // ----------------------------------------------------------------
    // Sensitivity (PATA-NA) & stats
    // ----------------------------------------------------------------

    #[test]
    fn na_mode_misses_alias_bug_but_keeps_direct_bug() {
        let src = r#"
            struct cfg_t { int frnd; };
            struct model_t { struct cfg_t *user_data; };
            void send_status(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                int x = cfg->frnd;
            }
            void friend_set(struct model_t *model) {
                struct cfg_t *cfg = model->user_data;
                if (!cfg) {
                    goto send;
                }
                cfg->frnd = 1;
                return;
            send:
                send_status(model);
            }
            int direct(int *p) {
                if (p == NULL) { }
                return *p;
            }
        "#;
        let module = pata_cc::compile_one("t.c", src).unwrap();
        let na = Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::without_alias()
        })
        .analyze(module);
        let na_kinds = kinds(&na);
        // The direct bug (check + deref of the same variable) survives…
        assert!(
            na_kinds.contains(&BugKind::NullPointerDeref),
            "{:?}",
            na.reports
        );
        // …but the cross-function alias bug is missed.
        assert!(
            !na.reports.iter().any(|r| r.function == "send_status"),
            "PATA-NA must miss the alias bug: {:?}",
            na.reports
        );
    }

    #[test]
    fn alias_mode_drops_more_typestates_and_constraints() {
        let src = r#"
            struct s { int f; };
            int root(struct s *p) {
                struct s *a = p;
                struct s *b = a;
                struct s *c = b;
                if (p == NULL) { return -1; }
                return c->f;
            }
        "#;
        let module = pata_cc::compile_one("t.c", src).unwrap();
        let out = Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
        .analyze(module);
        assert!(out.stats.typestates_unaware > out.stats.typestates_aware);
        assert!(out.stats.constraints_unaware > out.stats.constraints_aware);
    }

    #[test]
    fn loops_terminate() {
        let out = analyze(
            r#"
            int f(int n) {
                int i;
                int total = 0;
                for (i = 0; i < n; i++) {
                    total += i;
                    if (total > 100) { break; }
                }
                while (total > 0) { total -= 1; }
                return total;
            }
            "#,
        );
        assert!(out.stats.paths_explored >= 1);
    }

    #[test]
    fn recursion_terminates() {
        let out = analyze(
            r#"
            int fact(int n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            int root(void) { return fact(5); }
            "#,
        );
        assert!(out.stats.paths_explored >= 1);
    }

    // ----------------------------------------------------------------
    // UAF checker (framework-generality extension)
    // ----------------------------------------------------------------

    #[test]
    fn uaf_through_alias_detected() {
        let out = analyze_all(
            r#"
            void f(int n) {
                int *p = malloc(n);
                if (p == NULL) { return; }
                int *q = p;
                free(p);
                int v = *q;
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::UseAfterFree),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn double_free_detected_as_uaf() {
        let out = analyze_all(
            r#"
            void f(int n) {
                int *p = malloc(n);
                if (p == NULL) { return; }
                free(p);
                free(p);
            }
            "#,
        );
        assert!(
            kinds(&out).contains(&BugKind::UseAfterFree),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn free_then_realloc_not_uaf() {
        let out = analyze_all(
            r#"
            void f(int n) {
                int *p = malloc(n);
                if (p == NULL) { return; }
                free(p);
                p = malloc(n);
                if (p == NULL) { return; }
                *p = 1;
                free(p);
            }
            "#,
        );
        assert!(
            !kinds(&out).contains(&BugKind::UseAfterFree),
            "{:?}",
            out.reports
        );
    }

    // ----------------------------------------------------------------
    // §7 extension: function-pointer resolution
    // ----------------------------------------------------------------

    const CALLBACK_SRC: &str = r#"
        struct dev { int *res; int handler; };
        void cb(struct dev *d) {
            int x = *d->res;
        }
        void setup(struct dev *d) {
            d->handler = cb;
            if (d->res == NULL) {
                d->handler(d);
            }
        }
    "#;

    #[test]
    fn indirect_call_unresolved_by_default() {
        // Matches the paper: "PATA does not handle function-pointer calls,
        // and thus it cannot find bugs whose bug-trigger paths pass through
        // indirect function calls" (§7).
        let module = pata_cc::compile_one("t.c", CALLBACK_SRC).unwrap();
        let out = Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
        .analyze(module);
        assert!(
            !out.reports
                .iter()
                .any(|r| r.kind == BugKind::NullPointerDeref),
            "{:?}",
            out.reports
        );
    }

    #[test]
    fn indirect_call_resolved_with_extension() {
        let module = pata_cc::compile_one("t.c", CALLBACK_SRC).unwrap();
        let out = Pata::create(AnalysisConfig {
            threads: 1,
            resolve_fptrs: true,
            ..AnalysisConfig::default()
        })
        .analyze(module);
        let hit = out
            .reports
            .iter()
            .any(|r| r.kind == BugKind::NullPointerDeref && r.function == "cb");
        assert!(
            hit,
            "the callback bug needs the caller's null state: {:?}",
            out.reports
        );
    }

    #[test]
    fn fptr_resolution_through_local_variable() {
        let src = r#"
            struct dev { int *res; };
            int deref_cb(struct dev *d) { return *d->res; }
            void run(struct dev *d) {
                int fp = deref_cb;
                if (d->res == NULL) {
                    fp(d);
                }
            }
        "#;
        let module = pata_cc::compile_one("t.c", src).unwrap();
        let out = Pata::create(AnalysisConfig {
            threads: 1,
            resolve_fptrs: true,
            ..AnalysisConfig::default()
        })
        .analyze(module);
        assert!(
            out.reports.iter().any(|r| r.function == "deref_cb"),
            "{:?}",
            out.reports
        );
    }

    // ----------------------------------------------------------------
    // §7 extension: deeper loop unrolling
    // ----------------------------------------------------------------

    #[test]
    fn loop_unrolling_depth_controls_iteration_bugs() {
        // p becomes NULL only on the second loop iteration; the deref after
        // the loop needs a 2-iteration path.
        let src = r#"
            struct dev { int *res; };
            int sweep(struct dev *d, int n) {
                int *p = d->res;
                int i;
                for (i = 0; i < n; i++) {
                    if (i == 1) {
                        p = NULL;
                    }
                }
                return *p;
            }
        "#;
        let one = {
            let module = pata_cc::compile_one("t.c", src).unwrap();
            Pata::create(AnalysisConfig {
                threads: 1,
                ..AnalysisConfig::default()
            })
            .analyze(module)
        };
        assert!(
            !one.reports
                .iter()
                .any(|r| r.kind == BugKind::NullPointerDeref),
            "1-iteration unrolling cannot reach i == 1: {:?}",
            one.reports
        );
        let two = {
            let module = pata_cc::compile_one("t.c", src).unwrap();
            let mut cfg = AnalysisConfig {
                threads: 1,
                ..AnalysisConfig::default()
            };
            cfg.budget.loop_iterations = 2;
            Pata::create(cfg).analyze(module)
        };
        assert!(
            two.reports
                .iter()
                .any(|r| r.kind == BugKind::NullPointerDeref),
            "2-iteration unrolling reaches the assignment: {:?}",
            two.reports
        );
    }

    #[test]
    fn work_stealing_reports_match_single_thread_exactly() {
        // A multi-root module with uneven root costs; the report *list*
        // (kind, file, function, lines), not just its length, must be
        // identical whatever the scheduler does.
        let src = r#"
            struct dev { int *res; };
            int p1(struct dev *d) { if (d->res == NULL) { } return *d->res; }
            int p2(int c) { int x; if (c > 0) { x = 1; } return x; }
            int p3(int n) {
                int *m = malloc(n);
                if (m == NULL) { return -1; }
                if (n < 0) { return -2; }
                free(m);
                return 0;
            }
            int p4(int *q) { if (q == NULL) { } return *q; }
            int p5(int i) { int t = 0; for (; i > 0; i--) { t += i; } return t; }
            int p6(struct dev *d) {
                if (d->res == NULL) { return -1; }
                return *d->res;
            }
        "#;
        let render = |out: &AnalysisOutcome| {
            let mut lines: Vec<String> = out
                .reports
                .iter()
                .map(|r| {
                    format!(
                        "{:?} {} {} {} {}",
                        r.kind, r.file, r.function, r.origin_line, r.site_line
                    )
                })
                .collect();
            lines.sort();
            lines
        };
        let seq = Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
        .analyze(pata_cc::compile_one("t.c", src).unwrap());
        for threads in [0, 2, 3] {
            let par = Pata::create(AnalysisConfig {
                threads,
                ..AnalysisConfig::default()
            })
            .analyze(pata_cc::compile_one("t.c", src).unwrap());
            assert_eq!(render(&seq), render(&par), "threads={threads}");
            assert_eq!(seq.stats.paths_explored, par.stats.paths_explored);
            assert_eq!(seq.stats.false_bugs_dropped, par.stats.false_bugs_dropped);
        }
    }

    #[test]
    fn validation_cache_persists_across_runs() {
        let pata = Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        });
        let src = "int f(int *p) { if (p == NULL) { } return *p; }";
        let first = pata.analyze(pata_cc::compile_one("t.c", src).unwrap());
        assert!(first.stats.validation_cache_misses > 0, "{:?}", first.stats);
        let second = pata.analyze(pata_cc::compile_one("t.c", src).unwrap());
        assert_eq!(
            second.stats.validation_cache_misses, 0,
            "the second identical run must be fully cached: {:?}",
            second.stats
        );
        assert!(second.stats.validation_cache_hits > 0);
        assert_eq!(first.reports.len(), second.reports.len());
    }

    #[test]
    fn parallel_matches_sequential() {
        let src = r#"
            int a(int *p) { if (p == NULL) { } return *p; }
            int b(int *p) { if (p == NULL) { } return *p; }
            int c(int *p) { if (p == NULL) { } return *p; }
            int d(int *p) { if (p == NULL) { } return *p; }
        "#;
        let m1 = pata_cc::compile_one("t.c", src).unwrap();
        let m2 = pata_cc::compile_one("t.c", src).unwrap();
        let seq = Pata::create(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
        .analyze(m1);
        let par = Pata::create(AnalysisConfig {
            threads: 4,
            ..AnalysisConfig::default()
        })
        .analyze(m2);
        assert_eq!(seq.reports.len(), par.reports.len());
        assert_eq!(seq.stats.paths_explored, par.stats.paths_explored);
    }
}
