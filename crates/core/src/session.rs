//! The analysis session — the one public entry point of the crate.
//!
//! [`AnalysisSession`] wraps the internal pipeline driver with the pieces
//! a long-lived analysis service needs: source compilation, an optional
//! on-disk store ([`crate::persist`]), fingerprint-based change detection,
//! and incremental re-analysis that re-explores only *dirty* roots.
//!
//! ```text
//! AnalysisConfig::builder() … .build()
//!     → AnalysisSession::open(config, store_path)   // or ::new for in-memory
//!     → session.analyze(&request)                   // → versioned Report
//! ```
//!
//! # Determinism
//!
//! A session produces byte-identical reports whether a root's candidates
//! come from a fresh exploration, the in-memory warm state, or the
//! on-disk store, at any thread count. The argument: per-root exploration
//! is deterministic and independent, results are merged in root order,
//! and a root is only treated as *clean* when every function transitively
//! reachable from it has an unchanged IR fingerprint — so the cached
//! candidates are exactly what re-exploring would produce. Stage-2
//! validation consumes the same candidate stream either way, and its
//! cache is keyed canonically (verdict-neutral by construction).

use crate::collector;
use crate::config::AnalysisConfig;
use crate::driver::{Pata, RootRun};
use crate::faultinject;
use crate::filter;
use crate::persist::{
    config_fingerprint, fnv64, root_closure_fp, FunctionDb, Store, StoredBug, StoredRoot,
};
use crate::registry::CheckerRegistry;
use crate::report::{DegradedRoot, PossibleBug, Report};
use crate::stats::{AnalysisStats, BudgetNote};
use crate::telemetry::{Span, Telemetry, TelemetrySnapshot};
use crate::typestate::Checker;
use crate::validate::ValidationCache;
use pata_ir::Module;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One source file of an [`AnalysisRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// File name (used in reports and for change attribution).
    pub name: String,
    /// Mini-C source text.
    pub text: String,
}

/// A batch of sources to analyze together as one module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisRequest {
    /// The module's source files, in compilation order.
    pub files: Vec<SourceFile>,
}

impl AnalysisRequest {
    /// An empty request.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one source file (builder style).
    pub fn file(mut self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.files.push(SourceFile {
            name: name.into(),
            text: text.into(),
        });
        self
    }
}

/// What incremental re-analysis did for one [`AnalysisSession::analyze`]
/// call — the counters behind the `driver.serve.*` telemetry family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Total analysis roots in the request.
    pub roots: u64,
    /// Roots re-explored because their closure fingerprint changed (or no
    /// warm result existed).
    pub dirty_roots: u64,
    /// Roots answered from the warm cache without re-exploration.
    pub clean_roots: u64,
    /// Functions whose IR fingerprint differs from the previous run.
    pub changed_functions: u64,
    /// Whether warm state (in-memory or loaded from the store) was
    /// available when the request arrived.
    pub warm_start: bool,
}

/// Why [`AnalysisSession::analyze`] refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The request contained no source files.
    EmptyRequest,
    /// The sources did not compile; one rendered diagnostic per entry.
    Compile(Vec<String>),
    /// The pipeline panicked outside every per-root containment boundary.
    /// The session survives: its warm state is reset, so the next request
    /// cold-starts (re-loading the store if one is open happens lazily via
    /// re-exploration, never through the poisoned in-memory image).
    Internal(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::EmptyRequest => f.write_str("request contains no source files"),
            SessionError::Compile(diags) => {
                write!(f, "compilation failed:\n{}", diags.join("\n"))
            }
            SessionError::Internal(reason) => {
                write!(f, "internal analysis failure: {reason}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// The result of one session analysis.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The versioned report document (schema
    /// [`crate::report::REPORT_SCHEMA_VERSION`]), budget notes attached.
    pub report: Report,
    /// Aggregate statistics, cached roots included (their counters replay
    /// from the store; their wall-clock does not).
    pub stats: AnalysisStats,
    /// Telemetry snapshot taken at the end of the run; empty unless
    /// [`AnalysisConfig::telemetry`] is set.
    pub telemetry: TelemetrySnapshot,
    /// What incremental re-analysis did for this request.
    pub incremental: IncrementalStats,
}

/// Warm per-corpus state carried between `analyze` calls (and to/from the
/// on-disk store).
#[derive(Debug)]
struct WarmState {
    functions: FunctionDb,
    /// Per-source-file `(name, content hash)` in request order. When a
    /// prefix of the new request matches byte-for-byte, functions in
    /// those files keep their previous fingerprints without re-printing
    /// their IR (fingerprint prefix reuse).
    file_hashes: Vec<(String, u64)>,
    roots: Vec<StoredRoot>,
}

/// A persistent analysis session.
///
/// ```
/// use pata_core::{AnalysisConfig, AnalysisRequest, AnalysisSession};
///
/// let mut session = AnalysisSession::new(AnalysisConfig::default());
/// let request = AnalysisRequest::new().file(
///     "demo.c",
///     r#"
///     struct dev { int *res; };
///     static int demo_probe(struct dev *d) {
///         if (d->res == NULL) { }
///         return *d->res;        // NPD when d->res is NULL
///     }
///     static struct drv demo_driver = { .probe = demo_probe };
///     "#,
/// );
/// let outcome = session.analyze(&request).unwrap();
/// assert!(outcome
///     .report
///     .reports
///     .iter()
///     .any(|r| r.kind.as_str() == "null-pointer-dereference"));
///
/// // The second identical request is answered from the warm cache.
/// let again = session.analyze(&request).unwrap();
/// assert_eq!(again.incremental.clean_roots, again.incremental.roots);
/// assert_eq!(again.report.to_json(), outcome.report.to_json());
/// ```
#[derive(Debug)]
pub struct AnalysisSession {
    driver: Pata,
    config_fp: u64,
    store_path: Option<PathBuf>,
    warm: Option<WarmState>,
    /// True when the on-disk store is known to equal the in-memory warm
    /// state, with `synced_validation_len` verdicts — lets a fully-clean
    /// request skip the redundant store rewrite.
    store_synced: bool,
    synced_validation_len: usize,
}

impl AnalysisSession {
    /// An in-memory session (no on-disk store) with the built-in checkers.
    pub fn new(config: AnalysisConfig) -> Self {
        Self::with_registry(config, CheckerRegistry::with_builtins())
    }

    /// An in-memory session with a custom [`CheckerRegistry`] (out-of-tree
    /// checkers run alongside the built-ins; see `examples/`).
    pub fn with_registry(config: AnalysisConfig, registry: CheckerRegistry) -> Self {
        let config_fp = config_fingerprint(&config);
        AnalysisSession {
            driver: Pata::create_with_registry(config, registry),
            config_fp,
            store_path: None,
            warm: None,
            store_synced: false,
            synced_validation_len: 0,
        }
    }

    /// A session backed by the on-disk store at `path`.
    ///
    /// Loading is infallible: a missing, corrupt, schema-incompatible or
    /// configuration-incompatible store is treated as a clean cold start.
    /// Every successful `analyze` call re-saves the store.
    pub fn open(config: AnalysisConfig, path: impl AsRef<Path>) -> Self {
        Self::open_with_registry(config, CheckerRegistry::with_builtins(), path)
    }

    /// [`AnalysisSession::open`] with a custom [`CheckerRegistry`].
    pub fn open_with_registry(
        config: AnalysisConfig,
        registry: CheckerRegistry,
        path: impl AsRef<Path>,
    ) -> Self {
        let mut session = Self::with_registry(config, registry);
        let path = path.as_ref().to_path_buf();
        let t0 = Instant::now();
        if let Some(store) = Store::load(&path, session.config_fp) {
            session.driver.validation_cache().import(store.validation);
            session.warm = Some(WarmState {
                functions: store.functions,
                file_hashes: store.files,
                roots: store.roots,
            });
            session.store_synced = true;
            session.synced_validation_len = session.driver.validation_cache().len();
        }
        let load_ns = t0.elapsed().as_nanos() as u64;
        session.driver.telemetry().record_direct(|sink| {
            sink.record_ns("driver.serve.store_load", None, load_ns);
            sink.add(
                "driver.serve.store_loaded",
                u64::from(session.warm.is_some()),
            );
        });
        session.store_path = Some(path);
        session
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        self.driver.config()
    }

    /// The session's telemetry registry (metrics accumulate across calls).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.driver.telemetry()
    }

    /// The session's shared stage-2 validation cache.
    pub fn validation_cache(&self) -> &Arc<ValidationCache> {
        self.driver.validation_cache()
    }

    /// The session's checker registry.
    pub fn registry(&self) -> &CheckerRegistry {
        self.driver.registry()
    }

    /// Runs the full pipeline on an already-compiled module, without
    /// touching the warm state or the store. The in-memory equivalent of
    /// the retired `Pata::new(config).analyze(module)` pattern; stage-2
    /// verdicts still share the session's validation cache across calls.
    pub fn analyze_module(&self, module: Module) -> crate::driver::AnalysisOutcome {
        self.driver.analyze(module)
    }

    /// [`AnalysisSession::analyze_module`] with explicit checker instances
    /// (e.g. user-defined FSMs; see `examples/custom_checker.rs`).
    pub fn analyze_module_with(
        &self,
        module: Module,
        checkers: &[Box<dyn Checker>],
    ) -> crate::driver::AnalysisOutcome {
        self.driver.analyze_with(module, checkers)
    }

    /// Runs phases P1 + P2 only (see [`Pata::collect_candidates`]); used
    /// by benchmarks that time stage-2 validation in isolation.
    pub fn collect_candidates(&self, module: Module) -> (Module, Vec<PossibleBug>, AnalysisStats) {
        self.driver.collect_candidates(module)
    }

    /// Compiles and analyzes `request`, re-exploring only roots whose
    /// transitive callee fingerprints changed since the previous call (or
    /// the persisted store), then updates the warm state and re-saves the
    /// store.
    pub fn analyze(&mut self, request: &AnalysisRequest) -> Result<SessionOutcome, SessionError> {
        let start = Instant::now();
        if request.files.is_empty() {
            return Err(SessionError::EmptyRequest);
        }
        let mut cc = pata_cc::Compiler::new();
        for f in &request.files {
            cc.add_source(&f.name, &f.text);
        }
        let module = cc.compile().map_err(|diags| {
            SessionError::Compile(diags.iter().map(ToString::to_string).collect())
        })?;
        let compile_ns = start.elapsed().as_nanos() as u64;
        let telemetry = Arc::clone(self.driver.telemetry());
        if telemetry.is_enabled() {
            telemetry
                .record_direct(|sink| sink.record_ns("driver.serve.compile", None, compile_ns));
        }
        let file_hashes: Vec<(String, u64)> = request
            .files
            .iter()
            .map(|f| (f.name.clone(), fnv64(f.text.as_bytes())))
            .collect();
        // The last containment boundary: per-root faults are absorbed by
        // the quarantine/demotion ladder below, but a panic outside those
        // scopes (collection, fingerprinting, splicing, store writing)
        // must not take down a long-lived session — or the serve worker
        // wrapping it. Warm state may be half-updated at the panic point,
        // so it is discarded wholesale.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.analyze_compiled(module, start, file_hashes)
        })) {
            Ok(outcome) => Ok(outcome),
            Err(payload) => {
                self.reset_warm();
                Err(SessionError::Internal(crate::driver::panic_reason(
                    &*payload,
                )))
            }
        }
    }

    /// Discards the in-memory warm state so the next request cold-starts.
    /// Used after a contained internal panic, when the warm image can no
    /// longer be trusted to mirror either the sources or the store.
    pub(crate) fn reset_warm(&mut self) {
        self.warm = None;
        self.store_synced = false;
        self.synced_validation_len = 0;
    }

    /// The incremental pipeline on a compiled module. `file_hashes` are
    /// the per-source-file content hashes in request order (which is also
    /// the compiler's `FileId` order).
    fn analyze_compiled(
        &mut self,
        mut module: Module,
        start: Instant,
        file_hashes: Vec<(String, u64)>,
    ) -> SessionOutcome {
        let telemetry = Arc::clone(self.driver.telemetry());
        let tel_on = telemetry.is_enabled();
        let checkers = self.driver.instantiate_checkers();
        let config = self.driver.config().clone();
        faultinject::maybe_panic(config.fault_plan.as_deref(), "session.analyze", "");

        // P1: information collection.
        let span = Span::start(tel_on, "stage.collect");
        let (roots, call_graph) = collector::mark_interfaces_with_graph(&mut module);
        if tel_on {
            telemetry.record_direct(|sink| {
                span.finish(sink);
                sink.add("collect.roots", roots.len() as u64);
                sink.add("collect.call_edges", call_graph.edge_count() as u64);
            });
        }

        // Change detection. `db` is `None` when function names are
        // ambiguous — then nothing can be cached and every root is dirty.
        // Fingerprint prefix reuse: a function's printed IR depends only
        // on its own source file and the files lowered before it
        // (module-global variable numbering), and `FileId`s are assigned
        // in request order — so when the first `unchanged_prefix` files
        // are byte-identical to the previous run, functions in those
        // files keep their fingerprints without re-printing their IR.
        let fp_start = Instant::now();
        let unchanged_prefix = self.warm.as_ref().map_or(0, |w| {
            w.file_hashes
                .iter()
                .zip(&file_hashes)
                .take_while(|(a, b)| a == b)
                .count()
        });
        let db = FunctionDb::build_with_reuse(
            &module,
            self.warm.as_ref().map(|w| &w.functions),
            unchanged_prefix,
        );
        let closures: Vec<u64> = match &db {
            Some(db) => roots
                .iter()
                .map(|&r| root_closure_fp(&module, &call_graph, r, config.resolve_fptrs, db))
                .collect(),
            None => vec![0; roots.len()],
        };
        let warm_start = self.warm.is_some();
        let changed_functions = match (&db, &self.warm) {
            (Some(db), Some(warm)) => db.changed_since(&warm.functions),
            (Some(db), None) => db.entries.len() as u64,
            (None, _) => module.functions().len() as u64,
        };

        // Classify each root: clean roots resolve their cached candidates
        // against the new module up front — a resolution failure demotes
        // the root to dirty (never to a wrong answer).
        let warm_by_name: HashMap<&str, &StoredRoot> = self
            .warm
            .as_ref()
            .map(|w| w.roots.iter().map(|r| (r.root.as_str(), r)).collect())
            .unwrap_or_default();
        enum Plan<'a> {
            Clean(&'a StoredRoot, Vec<PossibleBug>),
            Dirty,
        }
        let plans: Vec<Plan> = roots
            .iter()
            .zip(&closures)
            .map(|(&root, &closure_fp)| {
                if db.is_none() {
                    return Plan::Dirty;
                }
                let name = module.function(root).name();
                let Some(&stored) = warm_by_name.get(name) else {
                    return Plan::Dirty;
                };
                if stored.closure_fp != closure_fp {
                    return Plan::Dirty;
                }
                let resolved: Option<Vec<PossibleBug>> = stored
                    .candidates
                    .iter()
                    .map(|b| b.resolve(&module, root))
                    .collect();
                match resolved {
                    Some(candidates) => Plan::Clean(stored, candidates),
                    None => Plan::Dirty,
                }
            })
            .collect();
        let dirty_ids: Vec<pata_ir::FuncId> = roots
            .iter()
            .zip(&plans)
            .filter(|(_, p)| matches!(p, Plan::Dirty))
            .map(|(&r, _)| r)
            .collect();
        let incremental = IncrementalStats {
            roots: roots.len() as u64,
            dirty_roots: dirty_ids.len() as u64,
            clean_roots: (roots.len() - dirty_ids.len()) as u64,
            changed_functions,
            warm_start,
        };
        let fingerprint_ns = fp_start.elapsed().as_nanos() as u64;
        if tel_on {
            telemetry.record_direct(|sink| {
                sink.record_ns("driver.serve.fingerprint", None, fingerprint_ns);
                sink.add("driver.serve.requests", 1);
                sink.add("driver.serve.dirty_roots", incremental.dirty_roots);
                sink.add("driver.serve.clean_roots", incremental.clean_roots);
                sink.add("driver.serve.changed_functions", changed_functions);
                // Invalidation fan-out: roots re-explored *because of* a
                // change (as opposed to cold-start exploration).
                if warm_start {
                    sink.add("driver.serve.invalidated_roots", incremental.dirty_roots);
                }
            });
        }

        // P2: explore the dirty roots, splice clean results from the cache.
        let span = Span::start(tel_on, "stage.explore");
        let mut stats = AnalysisStats {
            files_analyzed: module.files().len() as u64,
            loc_analyzed: module.total_loc(),
            ..AnalysisStats::default()
        };
        let runs = self
            .driver
            .explore_roots(&module, &checkers, &dirty_ids, &mut stats);
        if tel_on {
            telemetry.record_direct(|sink| span.finish(sink));
        }
        let mut runs_iter = runs.into_iter();
        let mut candidates: Vec<PossibleBug> = Vec::new();
        let mut notes: Vec<BudgetNote> = Vec::new();
        let mut degraded: Vec<DegradedRoot> = Vec::new();
        let mut new_roots: Vec<StoredRoot> = Vec::with_capacity(roots.len());
        for ((&root, closure_fp), plan) in roots.iter().zip(&closures).zip(plans) {
            match plan {
                Plan::Clean(stored, resolved) => {
                    stats += &stored.stats;
                    candidates.extend(resolved);
                    notes.extend(stored.note.clone());
                    degraded.extend(stored.degraded.clone());
                    new_roots.push(stored.clone());
                }
                Plan::Dirty => {
                    let run: RootRun = runs_iter
                        .next()
                        .expect("one exploration result per dirty root");
                    let run_degraded = run.failure.as_ref().map(|f| f.to_degraded());
                    let quarantined = run
                        .failure
                        .as_ref()
                        .is_some_and(|f| f.action == "quarantined");
                    // A quarantined root produced no trustworthy result:
                    // never persist it, so the next request re-explores it
                    // instead of replaying an empty answer as "clean". A
                    // demoted root's bounded result *is* deterministic —
                    // persist it together with its degraded entry so warm
                    // replays reproduce the report byte-identically.
                    if !quarantined {
                        new_roots.push(StoredRoot {
                            root: module.function(root).name().to_owned(),
                            closure_fp: *closure_fp,
                            candidates: run
                                .candidates
                                .iter()
                                .map(|b| StoredBug::from_possible(b, &module))
                                .collect(),
                            stats: run.stats,
                            note: run.note.clone(),
                            degraded: run_degraded.clone(),
                        });
                    }
                    degraded.extend(run_degraded);
                    candidates.extend(run.candidates);
                    notes.extend(run.note);
                }
            }
        }

        // P3: bug filtering (dedup + path validation).
        let span = Span::start(tel_on, "stage.filter");
        let cache = config
            .validation_cache
            .then(|| &**self.driver.validation_cache());
        let result = filter::filter_with_faults(
            &module,
            candidates,
            config.validate_paths,
            cache,
            Some(&telemetry),
            &mut stats,
            config.fault_plan.as_deref(),
        );
        degraded.extend(result.failures.iter().cloned());
        if tel_on {
            telemetry.record_direct(|sink| span.finish(sink));
        }
        stats.time = start.elapsed();

        // Update the warm state and (if open) the on-disk store. A fully
        // clean request (no dirty roots, no function changes, no new
        // validation verdicts, same root/function sets) would rewrite the
        // store byte-identically — skip the redundant serialization.
        let prev_counts = self
            .warm
            .as_ref()
            .map(|w| (w.functions.entries.len(), w.roots.len()));
        let files_unchanged = self
            .warm
            .as_ref()
            .is_some_and(|w| w.file_hashes == file_hashes);
        self.warm = db.map(|functions| WarmState {
            functions,
            file_hashes,
            roots: new_roots,
        });
        let store_unchanged = self.store_synced
            && files_unchanged
            && incremental.dirty_roots == 0
            && changed_functions == 0
            && self.driver.validation_cache().len() == self.synced_validation_len
            && prev_counts
                == self
                    .warm
                    .as_ref()
                    .map(|w| (w.functions.entries.len(), w.roots.len()));
        if store_unchanged {
            // Nothing to write; the on-disk store already matches.
        } else if let (Some(path), Some(warm)) = (&self.store_path, &self.warm) {
            let store = Store {
                config_fp: self.config_fp,
                corpus_fp: warm.functions.corpus_fingerprint(),
                functions: warm.functions.clone(),
                files: warm.file_hashes.clone(),
                roots: warm.roots.clone(),
                validation: if config.validation_cache {
                    self.driver.validation_cache().export()
                } else {
                    Vec::new()
                },
            };
            let t0 = Instant::now();
            let saved = store
                .save_with_faults(path, config.fault_plan.as_deref())
                .is_ok();
            let save_ns = t0.elapsed().as_nanos() as u64;
            self.store_synced = saved;
            self.synced_validation_len = self.driver.validation_cache().len();
            if tel_on {
                telemetry.record_direct(|sink| {
                    sink.record_ns("driver.serve.store_save", None, save_ns);
                    if !saved {
                        sink.add("driver.serve.store_save_errors", 1);
                    }
                });
            }
        } else {
            // No store path or nothing cacheable (ambiguous function
            // names): the disk state no longer mirrors the session.
            self.store_synced = false;
        }

        let report = Report::new(result.reports)
            .with_budget_notes(notes)
            .with_degraded(degraded);
        SessionOutcome {
            report,
            stats,
            telemetry: telemetry.snapshot(),
            incremental,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_ROOTS: &str = r#"
        struct dev { int *res; };
        int probe_a(struct dev *d) {
            if (d->res == NULL) { }
            return *d->res;
        }
        int probe_b(int n) {
            int *m = malloc(n);
            if (m == NULL) { return -1; }
            if (n < 0) { return -2; }
            free(m);
            return 0;
        }
    "#;

    fn request(files: &[(&str, &str)]) -> AnalysisRequest {
        let mut r = AnalysisRequest::new();
        for (name, text) in files {
            r = r.file(*name, *text);
        }
        r
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn empty_request_refused() {
        let mut s = AnalysisSession::new(config());
        assert_eq!(
            s.analyze(&AnalysisRequest::new()).unwrap_err(),
            SessionError::EmptyRequest
        );
    }

    #[test]
    fn compile_errors_reported() {
        let mut s = AnalysisSession::new(config());
        let err = s.analyze(&request(&[("bad.c", "int f( {")])).unwrap_err();
        assert!(matches!(err, SessionError::Compile(_)), "{err}");
    }

    #[test]
    fn second_identical_request_is_fully_clean() {
        let mut s = AnalysisSession::new(config());
        let req = request(&[("t.c", TWO_ROOTS)]);
        let first = s.analyze(&req).unwrap();
        assert!(!first.incremental.warm_start);
        assert_eq!(first.incremental.clean_roots, 0);
        let second = s.analyze(&req).unwrap();
        assert!(second.incremental.warm_start);
        assert_eq!(second.incremental.dirty_roots, 0);
        assert_eq!(second.incremental.changed_functions, 0);
        assert_eq!(second.report.to_json(), first.report.to_json());
    }

    #[test]
    fn editing_one_root_dirties_only_it() {
        let mut s = AnalysisSession::new(config());
        s.analyze(&request(&[("t.c", TWO_ROOTS)])).unwrap();
        // Append a new root in a second file: probe_a / probe_b unchanged.
        let grown = s
            .analyze(&request(&[
                ("t.c", TWO_ROOTS),
                (
                    "u.c",
                    "int probe_c(int *q) { if (q == NULL) { } return *q; }",
                ),
            ]))
            .unwrap();
        assert_eq!(grown.incremental.roots, 3);
        assert_eq!(grown.incremental.dirty_roots, 1);
        assert_eq!(grown.incremental.clean_roots, 2);
        assert_eq!(grown.incremental.changed_functions, 1);
    }

    #[test]
    fn session_outcome_matches_one_shot_driver() {
        let mut s = AnalysisSession::new(config());
        let warm = {
            let req = request(&[("t.c", TWO_ROOTS)]);
            s.analyze(&req).unwrap();
            s.analyze(&req).unwrap() // warm replay
        };
        let cold = AnalysisSession::new(config())
            .analyze_module(pata_cc::compile_one("t.c", TWO_ROOTS).unwrap());
        let cold_report = Report::new(cold.reports).with_budget_notes(cold.budget_notes);
        assert_eq!(warm.report.to_json(), cold_report.to_json());
    }
}
