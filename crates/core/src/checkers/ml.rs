//! Memory-leak checker — the paper's `FSM_ML` (Table 2) with an explicit
//! escape refinement.
//!
//! ```text
//! S = {S0, SNF, SF, SML}
//! Σ = {malloc, free, ret}
//!   S0  --malloc-->  SNF
//!   SNF --free-->    SF
//!   SNF --ret-->     SML  (possible bug!)
//! ```
//!
//! The paper's FSM reports at `ret` while the object is not freed; its case
//! study (Fig. 12c — RIOT's `make_message` leaking on the `vsnprintf`
//! error path) implies ownership transfer is exempt. This implementation
//! makes that explicit with two extra states:
//!
//! * `ESCAPED` — the pointer was stored into memory or passed to an opaque
//!   callee; ownership left the analysis' view, never reported.
//! * `RETURNED` — the object is handed to the caller via `return`; the
//!   path explorer *re-owns* it in the caller's frame, so a caller that
//!   drops it still produces a leak report.
//!
//! `ret` is evaluated per *function frame*: when a frame returns, every
//! heap object allocated in it that is still `SNF` leaks.

use crate::checkers::BugKind;
use crate::typestate::{
    BranchEvent, Checker, FrameEndEvent, FsmSpec, StateEntry, TrackCtx, UpdateInfo,
};
use pata_ir::InstKind;

/// Not freed.
pub const S_NF: u8 = 1;
/// Freed.
pub const S_F: u8 = 2;
/// Stored into memory / passed to an opaque callee.
pub const S_ESCAPED: u8 = 3;
/// Returned to the caller (re-owned by the explorer).
pub const S_RETURNED: u8 = 4;
/// Reported leaked.
pub const S_ML: u8 = 5;

/// The ML checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct MlChecker;

impl MlChecker {
    fn id(&self) -> u8 {
        BugKind::MemoryLeak.id()
    }
}

impl Checker for MlChecker {
    fn kind(&self) -> BugKind {
        BugKind::MemoryLeak
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "SNF", "SF", "ESCAPED", "RETURNED", "SML"],
            events: vec!["malloc", "free", "ret", "escape"],
            bug_state: "SML",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        match inst {
            InstKind::Malloc { .. } => {
                if let Some(key) = info.dst_key {
                    cx.transition(id, key, S_NF, None);
                }
            }
            InstKind::Free { .. } => {
                if let Some(key) = info.free_key {
                    let origin = cx.state(id, key);
                    cx.transition(id, key, S_F, origin);
                }
            }
            InstKind::Store { .. } => {
                // Ownership escapes when an unfreed pointer is written into
                // memory (e.g. `dev->buf = p`).
                if let Some(key) = info.stored_val_key {
                    if let Some(entry) = cx.state(id, key) {
                        if entry.state == S_NF {
                            cx.transition(id, key, S_ESCAPED, Some(entry));
                        }
                    }
                }
            }
            InstKind::Call { .. } => {
                // Pointer arguments to opaque callees: conservative escape.
                for &key in &info.escape_keys {
                    if let Some(entry) = cx.state(id, key) {
                        if entry.state == S_NF {
                            cx.transition(id, key, S_ESCAPED, Some(entry));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_branch(&self, cx: &mut TrackCtx<'_>, ev: &BranchEvent) {
        // `if (p == NULL)` after `p = malloc(…)`: along the null branch the
        // allocation failed, so there is no object to leak.
        if !ev.lhs_is_pointer {
            return;
        }
        let (Some(key), Some(0)) = (ev.lhs.key(), ev.rhs.as_const()) else {
            return;
        };
        if ev.op == pata_ir::CmpOp::Eq {
            if let Some(entry) = cx.state(self.id(), key) {
                if entry.state == S_NF {
                    cx.transition(self.id(), key, S_F, Some(entry));
                }
            }
        }
    }

    fn on_frame_end(&self, cx: &mut TrackCtx<'_>, ev: &FrameEndEvent<'_>) {
        let id = self.id();
        // Ownership transfer via `return p;`.
        if let Some(key) = ev.ret_val_key {
            if let Some(entry) = cx.state(id, key) {
                if entry.state == S_NF {
                    cx.transition(id, key, S_RETURNED, Some(entry));
                }
            }
        }
        // Anything allocated in this frame that is still SNF leaks here.
        for obj in ev.heap_objects {
            if let Some(entry) = cx.state(id, obj.key) {
                if entry.state == S_NF {
                    let origin = StateEntry {
                        state: entry.state,
                        origin_loc: obj.loc,
                        origin_id: obj.inst_id,
                    };
                    cx.report(BugKind::MemoryLeak, obj.key, origin, Vec::new());
                    cx.transition(id, obj.key, S_ML, Some(entry));
                }
            }
        }
    }
}
