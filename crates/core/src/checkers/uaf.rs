//! Use-after-free checker — a seventh FSM demonstrating the framework's
//! generality beyond the paper's six (its §8.1 surveys UAF-specific
//! typestate analyses; here the same alias-aware machinery covers it).
//!
//! ```text
//! S = {S0, ALLOC, FREED, SUAF}
//!   S0    --malloc--> ALLOC
//!   *     --free-->   FREED
//!   FREED --use/deref/free--> SUAF (possible bug!)
//! ```
//!
//! Because the state attaches to the alias set, `free(p); *q` is caught
//! when `q` aliases `p` — including through struct fields and calls. A
//! second `free` of a freed set (double free) is reported as the same bug
//! class, matching how kernel CVE triage groups them.

use crate::checkers::BugKind;
use crate::typestate::{Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata_ir::InstKind;

const S_ALLOC: u8 = 1;
const S_FREED: u8 = 2;
const S_UAF: u8 = 3;

/// The use-after-free checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct UafChecker;

impl UafChecker {
    fn id(&self) -> u8 {
        BugKind::UseAfterFree.id()
    }
}

impl Checker for UafChecker {
    fn kind(&self) -> BugKind {
        BugKind::UseAfterFree
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "ALLOC", "FREED", "SUAF"],
            events: vec!["malloc", "free", "use"],
            bug_state: "SUAF",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        match inst {
            InstKind::Malloc { .. } => {
                if let Some(key) = info.dst_key {
                    cx.transition(id, key, S_ALLOC, None);
                }
            }
            InstKind::Free { .. } => {
                if let Some(key) = info.free_key {
                    match cx.state(id, key) {
                        Some(entry) if entry.state == S_FREED => {
                            // Double free — same bug class.
                            cx.report(BugKind::UseAfterFree, key, entry, Vec::new());
                            cx.transition(id, key, S_UAF, Some(entry));
                        }
                        other => cx.transition(id, key, S_FREED, other),
                    }
                }
                return;
            }
            _ => {}
        }

        // A dereference of a freed pointer is the classic UAF.
        if let Some(key) = info.deref_key {
            if let Some(entry) = cx.state(id, key) {
                if entry.state == S_FREED {
                    cx.report(BugKind::UseAfterFree, key, entry, Vec::new());
                    cx.transition(id, key, S_UAF, Some(entry));
                }
            }
        }
    }
}
