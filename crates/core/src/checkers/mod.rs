//! The built-in typestate checkers.
//!
//! Three main checkers reproduce Table 2 of the paper — null-pointer
//! dereference ([`npd`]), uninitialized-variable access ([`uva`]) and memory
//! leak ([`ml`]) — and three additional checkers reproduce the generality
//! study of Table 7 — double lock/unlock ([`lock`]), array-index underflow
//! ([`underflow`]) and division by zero ([`divzero`]). Each checker is a
//! small, self-contained FSM implementation (the paper reports 100-200
//! lines per checker; these are in the same range).
//!
//! Custom checkers implement [`crate::typestate::Checker`]; see the
//! repository's `examples/custom_checker.rs`.

pub mod divzero;
pub mod lock;
pub mod ml;
pub mod npd;
pub mod uaf;
pub mod underflow;
pub mod uva;

use crate::typestate::Checker;
use std::fmt;

/// The bug types PATA detects out of the box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    /// Null-pointer dereference (Table 2, `FSM_NPD`).
    NullPointerDeref,
    /// Uninitialized-variable access (Table 2, `FSM_UVA`).
    UninitVarAccess,
    /// Memory leak (Table 2, `FSM_ML`).
    MemoryLeak,
    /// Double lock / double unlock (Table 7).
    DoubleLock,
    /// Array-index underflow (Table 7).
    ArrayIndexUnderflow,
    /// Division by zero (Table 7).
    DivisionByZero,
    /// Use-after-free / double free (framework extension; the paper's
    /// §8.1 surveys UAF-specific typestate analyses — the same alias-aware
    /// machinery covers it here).
    UseAfterFree,
}

impl BugKind {
    /// All built-in bug kinds.
    pub const ALL: [BugKind; 7] = [
        BugKind::NullPointerDeref,
        BugKind::UninitVarAccess,
        BugKind::MemoryLeak,
        BugKind::DoubleLock,
        BugKind::ArrayIndexUnderflow,
        BugKind::DivisionByZero,
        BugKind::UseAfterFree,
    ];

    /// The paper's three headline checkers (Table 5).
    pub const MAIN: [BugKind; 3] = [
        BugKind::NullPointerDeref,
        BugKind::UninitVarAccess,
        BugKind::MemoryLeak,
    ];

    /// Stable numeric id namespacing this checker's states in the shared
    /// [`crate::typestate::StateTable`].
    pub fn id(self) -> u8 {
        match self {
            BugKind::NullPointerDeref => 0,
            BugKind::UninitVarAccess => 1,
            BugKind::MemoryLeak => 2,
            BugKind::DoubleLock => 3,
            BugKind::ArrayIndexUnderflow => 4,
            BugKind::DivisionByZero => 5,
            BugKind::UseAfterFree => 6,
        }
    }

    /// Stable slug, used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BugKind::NullPointerDeref => "null-pointer-dereference",
            BugKind::UninitVarAccess => "uninitialized-variable-access",
            BugKind::MemoryLeak => "memory-leak",
            BugKind::DoubleLock => "double-lock-unlock",
            BugKind::ArrayIndexUnderflow => "array-index-underflow",
            BugKind::DivisionByZero => "division-by-zero",
            BugKind::UseAfterFree => "use-after-free",
        }
    }

    /// The paper's abbreviation (NPD / UVA / ML …).
    pub fn abbrev(self) -> &'static str {
        match self {
            BugKind::NullPointerDeref => "NPD",
            BugKind::UninitVarAccess => "UVA",
            BugKind::MemoryLeak => "ML",
            BugKind::DoubleLock => "DL",
            BugKind::ArrayIndexUnderflow => "AIU",
            BugKind::DivisionByZero => "DBZ",
            BugKind::UseAfterFree => "UAF",
        }
    }

    /// A sentence fragment for report messages.
    pub fn describe(self) -> &'static str {
        match self {
            BugKind::NullPointerDeref => "possible null-pointer dereference",
            BugKind::UninitVarAccess => "possible uninitialized-variable access",
            BugKind::MemoryLeak => "possible memory leak",
            BugKind::DoubleLock => "possible double lock/unlock",
            BugKind::ArrayIndexUnderflow => "possible array-index underflow",
            BugKind::DivisionByZero => "possible division by zero",
            BugKind::UseAfterFree => "possible use-after-free or double free",
        }
    }

    /// Parses a [`BugKind::as_str`] slug back to the kind.
    pub fn parse(slug: &str) -> Option<BugKind> {
        BugKind::ALL.into_iter().find(|k| k.as_str() == slug)
    }

    /// Instantiates the built-in checker for this kind. Thin wrapper over
    /// the open [`crate::registry::BuiltinChecker`] factory, so built-ins
    /// and registered plugins share one construction path.
    pub fn instantiate(self) -> Box<dyn Checker> {
        use crate::registry::CheckerFactory as _;
        crate::registry::BuiltinChecker(self).create()
    }
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_instantiate_matching_checkers() {
        for kind in BugKind::ALL {
            let c = kind.instantiate();
            assert_eq!(c.kind(), kind);
            let fsm = c.fsm();
            assert!(!fsm.states.is_empty());
            assert!(!fsm.events.is_empty());
            assert!(
                fsm.states.contains(&fsm.bug_state),
                "{kind}: bug state must be a state"
            );
        }
    }

    #[test]
    fn abbrevs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in BugKind::ALL {
            assert!(seen.insert(kind.abbrev()));
        }
    }
}
