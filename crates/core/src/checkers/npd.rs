//! Null-pointer dereference checker — the paper's `FSM_NPD` (Table 2).
//!
//! ```text
//! S = {S0, SNON, SN, SNPD}
//! Σ = {ass_null, br_null, br_nonnull, deref}
//!   S0   --ass_null/br_null-->  SN
//!   S0   --deref/br_nonnull-->  SNON
//!   SN   --deref-->             SNPD   (possible bug!)
//!   SN   --br_nonnull-->        SNON
//!   SNON --ass_null/br_null-->  SN
//! ```
//!
//! `deref` fires when a pointer is used as a `LOAD`/`STORE` address or as a
//! `GEP` base (the `p->f` access pattern of the motivating bugs, Figs. 1, 3
//! and 12). All variables in one alias set share the state, so a pointer
//! checked against `NULL` under one name and dereferenced under an alias is
//! still caught (the Zephyr `friend_set` bug).

use crate::checkers::BugKind;
use crate::typestate::{BranchEvent, Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata_ir::{CmpOp, ConstVal, InstKind};

const S_NON: u8 = 1;
const S_N: u8 = 2;
const S_NPD: u8 = 3;

/// The NPD checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct NpdChecker;

impl NpdChecker {
    fn id(&self) -> u8 {
        BugKind::NullPointerDeref.id()
    }
}

impl Checker for NpdChecker {
    fn kind(&self) -> BugKind {
        BugKind::NullPointerDeref
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "SNON", "SN", "SNPD"],
            events: vec!["ass_null", "br_null", "br_nonnull", "deref"],
            bug_state: "SNPD",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        // PATA-NA: propagate state across direct assignments.
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        // ass_null.
        if let InstKind::Const {
            value: ConstVal::Null,
            ..
        } = inst
        {
            if let Some(key) = info.dst_key {
                cx.transition(id, key, S_N, None);
            }
        }
        // Storing NULL through a pointer: the stored-to object is null.
        if let Some((key, ConstVal::Null)) = info.stored_const {
            cx.transition(id, key, S_N, None);
        }
        // deref: LOAD address / STORE address / GEP base.
        if let Some(key) = info.deref_key {
            match cx.state(id, key) {
                Some(entry) if entry.state == S_N => {
                    cx.report(BugKind::NullPointerDeref, key, entry, Vec::new());
                    cx.transition(id, key, S_NPD, Some(entry));
                }
                Some(entry) if entry.state == S_NPD => {
                    // Absorbing state, but every *distinct* dereference site
                    // is its own bug (the paper's Fig. 12a reports four
                    // dereferences of one NULL pointer as four bugs); the
                    // per-(origin, site) dedup keeps paths from repeating.
                    cx.report(BugKind::NullPointerDeref, key, entry, Vec::new());
                }
                other => {
                    // S0/SNON --deref--> SNON.
                    cx.transition(id, key, S_NON, other);
                }
            }
        }
    }

    fn on_branch(&self, cx: &mut TrackCtx<'_>, ev: &BranchEvent) {
        let id = self.id();
        // Only null tests on pointers matter: `p == NULL` / `p != NULL`
        // (the explorer normalizes the variable to the lhs).
        if !ev.lhs_is_pointer {
            return;
        }
        let (Some(key), Some(0)) = (ev.lhs.key(), ev.rhs.as_const()) else {
            return;
        };
        match ev.op {
            CmpOp::Eq => {
                // br_null.
                let prior = cx.state(id, key);
                if prior.map(|e| e.state) != Some(S_NPD) {
                    cx.transition(id, key, S_N, None);
                }
            }
            CmpOp::Ne => {
                // br_nonnull.
                let prior = cx.state(id, key);
                if prior.map(|e| e.state) != Some(S_NPD) {
                    cx.transition(id, key, S_NON, prior);
                }
            }
            _ => {}
        }
    }
}
