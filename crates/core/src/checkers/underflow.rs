//! Array-index underflow checker (Table 7 generality study).
//!
//! ```text
//! S = {S0, SNEG, SNONNEG}
//!   ass_const(c<0) / br(i<0)  --> SNEG
//!   ass_const(c≥0) / br(i≥0)  --> SNONNEG
//!   SNEG + index              --> bug
//! ```
//!
//! Only indices with *evidence* of negativity are reported (a branch
//! establishing `i < 0`, or a negative constant); unconstrained indices are
//! left alone, mirroring PATA's low-noise design. The path validator then
//! confirms the negative-index path is feasible.

use crate::checkers::BugKind;
use crate::typestate::{BranchEvent, Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata_ir::{CmpOp, ConstVal, InstKind};

const S_NEG: u8 = 1;
const S_NONNEG: u8 = 2;

/// The array-index underflow checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnderflowChecker;

impl UnderflowChecker {
    fn id(&self) -> u8 {
        BugKind::ArrayIndexUnderflow.id()
    }
}

impl Checker for UnderflowChecker {
    fn kind(&self) -> BugKind {
        BugKind::ArrayIndexUnderflow
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "SNEG", "SNONNEG", "SAIU"],
            events: vec!["ass_neg", "br_neg", "br_nonneg", "index"],
            bug_state: "SAIU",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        if let InstKind::Const {
            value: ConstVal::Int(v),
            ..
        } = inst
        {
            if let Some(key) = info.dst_key {
                let s = if *v < 0 { S_NEG } else { S_NONNEG };
                cx.transition(id, key, s, None);
            }
        }
        if let InstKind::Index { .. } = inst {
            if let Some(c) = info.index_const {
                if c < 0 {
                    cx.report_here(BugKind::ArrayIndexUnderflow, Vec::new());
                }
            }
            if let Some(key) = info.index_key {
                if let Some(entry) = cx.state(id, key) {
                    if entry.state == S_NEG {
                        cx.report(BugKind::ArrayIndexUnderflow, key, entry, Vec::new());
                    }
                }
            }
        }
    }

    fn on_branch(&self, cx: &mut TrackCtx<'_>, ev: &BranchEvent) {
        let id = self.id();
        if ev.lhs_is_pointer {
            return;
        }
        let (Some(key), Some(c)) = (ev.lhs.key(), ev.rhs.as_const()) else {
            return;
        };
        match ev.op {
            // i < c with c <= 0 can make i negative; i <= c with c < 0 must.
            CmpOp::Lt if c <= 0 => cx.transition(id, key, S_NEG, None),
            CmpOp::Le if c < 0 => cx.transition(id, key, S_NEG, None),
            CmpOp::Eq if c < 0 => cx.transition(id, key, S_NEG, None),
            // Evidence of non-negativity.
            CmpOp::Ge if c >= 0 => cx.transition(id, key, S_NONNEG, None),
            CmpOp::Gt if c >= -1 => cx.transition(id, key, S_NONNEG, None),
            CmpOp::Eq if c >= 0 => cx.transition(id, key, S_NONNEG, None),
            _ => {}
        }
    }
}
