//! Division-by-zero checker (Table 7 generality study).
//!
//! ```text
//! S = {S0, SZ, SNZ}
//!   ass_const(0) / br(v==0)   --> SZ
//!   ass_const(c≠0) / br(v≠0)  --> SNZ
//!   SZ + div/rem divisor      --> bug
//! ```
//!
//! As with the underflow checker, only divisors with evidence of zeroness
//! are reported; the validator confirms the zero path is feasible.

use crate::checkers::BugKind;
use crate::typestate::{BranchEvent, Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata_ir::{CmpOp, ConstVal, InstKind};

const S_Z: u8 = 1;
const S_NZ: u8 = 2;

/// The division-by-zero checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct DivZeroChecker;

impl DivZeroChecker {
    fn id(&self) -> u8 {
        BugKind::DivisionByZero.id()
    }
}

impl Checker for DivZeroChecker {
    fn kind(&self) -> BugKind {
        BugKind::DivisionByZero
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "SZ", "SNZ", "SDBZ"],
            events: vec!["ass_zero", "br_zero", "br_nonzero", "div"],
            bug_state: "SDBZ",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        if let InstKind::Const {
            value: ConstVal::Int(v),
            ..
        } = inst
        {
            if let Some(key) = info.dst_key {
                let s = if *v == 0 { S_Z } else { S_NZ };
                cx.transition(id, key, s, None);
            }
        }
        if let InstKind::Bin { op, .. } = inst {
            if op.traps_on_zero() {
                if info.divisor_const == Some(0) {
                    cx.report_here(BugKind::DivisionByZero, Vec::new());
                }
                if let Some(key) = info.divisor_key {
                    if let Some(entry) = cx.state(id, key) {
                        if entry.state == S_Z {
                            cx.report(BugKind::DivisionByZero, key, entry, Vec::new());
                        }
                    }
                }
            }
        }
    }

    fn on_branch(&self, cx: &mut TrackCtx<'_>, ev: &BranchEvent) {
        let id = self.id();
        if ev.lhs_is_pointer {
            return;
        }
        let (Some(key), Some(c)) = (ev.lhs.key(), ev.rhs.as_const()) else {
            return;
        };
        match (ev.op, c) {
            (CmpOp::Eq, 0) => cx.transition(id, key, S_Z, None),
            (CmpOp::Ne, 0) => cx.transition(id, key, S_NZ, None),
            (CmpOp::Gt, c) if c >= 0 => cx.transition(id, key, S_NZ, None),
            (CmpOp::Lt, c) if c <= 0 => cx.transition(id, key, S_NZ, None),
            (CmpOp::Eq, c) if c != 0 => cx.transition(id, key, S_NZ, None),
            _ => {}
        }
    }
}
