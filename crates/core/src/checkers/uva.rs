//! Uninitialized-variable access checker — the paper's `FSM_UVA` (Table 2).
//!
//! ```text
//! S = {S0, SUI, SI, SUVA}
//! Σ = {ass_const, load, alloc, use}
//!   S0  --alloc-->      SUI   (local declared / heap object allocated)
//!   SUI --ass_const-->  SI    (first write initializes)
//!   SUI --use/load-->   SUVA  (possible bug!)
//! ```
//!
//! Two flavours of "uninitialized" are distinguished:
//! * `SUI_SCALAR` — the *value* of a local is uninitialized (`int x;`);
//!   reading `x` in any operand position is the `use` event.
//! * `SUI_HEAP` — the *pointee* of a valid pointer is uninitialized
//!   (`p = malloc(…)`, or a struct-valued local's storage); the `load`
//!   event is a `LOAD` through the pointer, and field accesses (`GEP`)
//!   propagate the state field-sensitively, as in the TencentOS
//!   `pthread_create` case study (Fig. 12d).
//!
//! A `STORE` initializes both the written access path and the overwritten
//! object (so the `f(&v)` out-parameter idiom marks `v` initialized), and
//! `memset` initializes the whole object (the developers' fix in Fig. 12d).

use crate::checkers::BugKind;
use crate::typestate::{Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata_ir::InstKind;

const S_UI_SCALAR: u8 = 1;
const S_UI_HEAP: u8 = 2;
const S_I: u8 = 3;
const S_UVA: u8 = 4;

/// The UVA checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct UvaChecker;

impl UvaChecker {
    fn id(&self) -> u8 {
        BugKind::UninitVarAccess.id()
    }
}

impl Checker for UvaChecker {
    fn kind(&self) -> BugKind {
        BugKind::UninitVarAccess
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "SUI(scalar)", "SUI(heap)", "SI", "SUVA"],
            events: vec!["ass_const", "load", "alloc", "use"],
            bug_state: "SUVA",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        match inst {
            // alloc events.
            InstKind::Alloca { storage, .. } => {
                if let Some(key) = info.dst_key {
                    let s = if *storage { S_UI_HEAP } else { S_UI_SCALAR };
                    cx.transition(id, key, s, None);
                }
            }
            InstKind::Malloc { .. } => {
                if let Some(key) = info.dst_key {
                    cx.transition(id, key, S_UI_HEAP, None);
                }
            }
            // Whole-object initialization.
            InstKind::Memset { .. } => {
                if let Some(key) = info.deref_key.or(info.dst_key) {
                    cx.transition(id, key, S_I, None);
                }
            }
            // Field sensitivity: &p->f of an uninitialized object is itself
            // an uninitialized access path (until stored to).
            InstKind::Gep { .. } | InstKind::Index { .. } => {
                if let (Some(base), Some(dst)) = (info.deref_key, info.dst_key) {
                    if cx.state(id, base).map(|e| e.state) == Some(S_UI_HEAP)
                        && cx.state(id, dst).is_none()
                    {
                        let origin = cx.state(id, base);
                        cx.transition(id, dst, S_UI_HEAP, origin);
                    }
                }
            }
            _ => {}
        }

        // use events: reading an uninitialized scalar.
        for &(_, key) in &info.use_keys {
            if let Some(entry) = cx.state(id, key) {
                if entry.state == S_UI_SCALAR {
                    cx.report(BugKind::UninitVarAccess, key, entry, Vec::new());
                    cx.transition(id, key, S_UVA, Some(entry));
                }
            }
        }

        // load events: reading through a pointer to uninitialized storage.
        if let InstKind::Load { .. } = inst {
            if let Some(key) = info.deref_key {
                if let Some(entry) = cx.state(id, key) {
                    if entry.state == S_UI_HEAP {
                        cx.report(BugKind::UninitVarAccess, key, entry, Vec::new());
                        cx.transition(id, key, S_UVA, Some(entry));
                    }
                }
            }
        }

        // ass_const through memory: a STORE initializes the written access
        // path and the overwritten object (out-parameter idiom).
        if let InstKind::Store { .. } = inst {
            if let Some(key) = info.deref_key {
                let cur = cx.state(id, key).map(|e| e.state);
                if cur != Some(S_UVA) {
                    cx.transition(id, key, S_I, None);
                }
            }
            if let Some(old) = info.store_old_target {
                let cur = cx.state(id, old).map(|e| e.state);
                if cur != Some(S_UVA) {
                    cx.transition(id, old, S_I, None);
                }
            }
        }
    }
}
