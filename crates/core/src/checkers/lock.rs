//! Double-lock / double-unlock checker (Table 7 generality study).
//!
//! ```text
//! S = {S0, SL, SU}
//!   S0 --lock-->   SL          SL --lock-->   bug (double lock)
//!   SL --unlock--> SU          SU --unlock--> bug (double unlock)
//!   SU --lock-->   SL
//! ```
//!
//! A bare `unlock` in `S0` is *not* reported: the lock may have been taken
//! by a caller outside the analyzed path (standard kernel idiom).

use crate::checkers::BugKind;
use crate::typestate::{Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata_ir::InstKind;

const S_L: u8 = 1;
const S_U: u8 = 2;

/// The double-lock/unlock checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct LockChecker;

impl LockChecker {
    fn id(&self) -> u8 {
        BugKind::DoubleLock.id()
    }
}

impl Checker for LockChecker {
    fn kind(&self) -> BugKind {
        BugKind::DoubleLock
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "SL", "SU", "SBUG"],
            events: vec!["lock", "unlock"],
            bug_state: "SBUG",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.id();
        if matches!(inst, InstKind::Move { .. }) {
            if let (crate::config::AliasMode::None, Some((dst, src))) = (cx.mode, info.move_pair) {
                cx.copy_state(id, dst, src);
            }
        }
        let Some(key) = info.lock_key else { return };
        match inst {
            InstKind::Lock { .. } => match cx.state(id, key) {
                Some(entry) if entry.state == S_L => {
                    // Double lock; stays locked.
                    cx.report(BugKind::DoubleLock, key, entry, Vec::new());
                }
                other => cx.transition(id, key, S_L, other),
            },
            InstKind::Unlock { .. } => match cx.state(id, key) {
                Some(entry) if entry.state == S_L => {
                    cx.transition(id, key, S_U, Some(entry));
                }
                Some(entry) if entry.state == S_U => {
                    // Double unlock; stays unlocked.
                    cx.report(BugKind::DoubleLock, key, entry, Vec::new());
                }
                _ => {
                    // Unlock with unknown prior state: caller-held lock.
                }
            },
            _ => {}
        }
    }
}
