//! Structured telemetry: counters, gauges, and duration histograms wired
//! through every pipeline stage.
//!
//! The paper's evaluation (Tables 5–8) is entirely about *where analysis
//! time goes* — alias resolution, typestate tracking, SMT validation. A
//! flat counter dump at the end cannot attribute a regression to a stage,
//! a root function, or a solver behaviour. This module is the
//! observability backbone: every stage records into a [`TelemetrySink`],
//! per-worker sinks are merged deterministically at the end (mirroring the
//! work-stealing driver's result merge), and the merged
//! [`TelemetrySnapshot`] travels on [`crate::driver::AnalysisOutcome`] so
//! the CLI (`--stats-json`, `--profile`) and the bench binaries consume
//! structured data instead of scraping counters.
//!
//! # Design constraints
//!
//! * **Zero dependencies, no unsafe.** Histograms use fixed log2 buckets;
//!   JSON comes from [`crate::json`].
//! * **Disabled means a branch.** When telemetry is off, every record path
//!   is gated on a single `bool` loaded once per root (or a relaxed
//!   [`AtomicBool`] load on shared paths) — no clock reads, no hashing,
//!   no allocation. The `telemetry_overhead` bench enforces this.
//! * **Exact under parallelism.** Counter merging is commutative addition,
//!   so for a deterministic workload the merged counters under
//!   `--threads N` equal the `threads = 1` totals exactly (durations and
//!   gauges are timing-dependent and excluded from that guarantee).
//!
//! # Metric names
//!
//! Names are dotted strings, optionally labelled (e.g. per root function):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `stage.collect` / `stage.explore` / `stage.filter` | histogram | wall-clock per pipeline stage |
//! | `collect.roots`, `collect.call_edges` | counter | collector output sizes |
//! | `explore.root` (label = function) | histogram | per-root exploration time |
//! | `path.paths`, `path.insts`, `path.budget_exhausted` | counter | exploration volume |
//! | `alias.op` (label = move/load/store/gep/index/const/addr) | counter | alias-graph updates by rule |
//! | `typestate.transitions` | counter | alias-aware FSM transitions |
//! | `constraints.emitted` | counter | path constraints pushed |
//! | `driver.threads` | gauge | worker threads used |
//! | `driver.work_steals` | counter | roots stolen across queues |
//! | `validate.conjunctions` | counter | stage-2 solver questions asked |
//! | `validate.cache_hit` / `validate.cache_miss` | counter | [`crate::validate::ValidationCache`] outcomes |
//! | `validate.solve` | histogram | time spent inside stage-2 solving |
//! | `smt.solve_calls`, `smt.push`, `smt.pop` | counter | solver API traffic |
//! | `smt.propagations` | counter | interval-propagation iterations |
//! | `smt.scope_depth.max` | gauge | deepest push/pop nesting seen |

use crate::json;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of log2 histogram buckets: bucket `i` counts values `v` with
/// `64 - v.leading_zeros() == i`, i.e. bucket 0 holds `v == 0`, bucket 1
/// holds `v == 1`, bucket `i` holds `2^(i-1) <= v < 2^i`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Schema version stamped into [`TelemetrySnapshot::to_json`] output.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// One recorded metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A level; merging keeps the maximum.
    Gauge(i64),
    /// A duration histogram over nanosecond samples, with fixed log2
    /// buckets plus exact count/total/min/max.
    Histogram(Histogram),
}

/// Fixed-bucket log2 histogram of nanosecond durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample (ns); meaningless when `count == 0`.
    pub min_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_ns / self.count
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs — the sparse
    /// form used by the JSON schema.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// Key identifying a metric: a static name plus an optional label (e.g.
/// the root function for `explore.root`).
pub type MetricKey = (&'static str, Option<Box<str>>);

/// A per-worker shard of recorded metrics. Not shared: each worker (and
/// each [`crate::path::Explorer`]) owns one and records without locking;
/// shards are merged into the session [`Telemetry`] at the end.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    metrics: HashMap<MetricKey, Metric>,
}

impl TelemetrySink {
    /// An empty sink.
    pub fn new() -> Self {
        TelemetrySink::default()
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.add_labeled(name, None, n);
    }

    /// Adds `n` to the counter `name` with a label.
    pub fn add_labeled(&mut self, name: &'static str, label: Option<Box<str>>, n: u64) {
        match self
            .metrics
            .entry((name, label))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            _ => debug_assert!(false, "metric `{name}` is not a counter"),
        }
    }

    /// Raises the gauge `name` to at least `v`.
    pub fn gauge_max(&mut self, name: &'static str, v: i64) {
        match self
            .metrics
            .entry((name, None))
            .or_insert(Metric::Gauge(i64::MIN))
        {
            Metric::Gauge(g) => *g = (*g).max(v),
            _ => debug_assert!(false, "metric `{name}` is not a gauge"),
        }
    }

    /// Records a duration sample (in nanoseconds) into histogram `name`.
    pub fn record_ns(&mut self, name: &'static str, label: Option<Box<str>>, ns: u64) {
        match self
            .metrics
            .entry((name, label))
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.record(ns),
            _ => debug_assert!(false, "metric `{name}` is not a histogram"),
        }
    }

    /// Merges another sink into this one (commutative for counters and
    /// histograms, max for gauges).
    pub fn merge(&mut self, other: TelemetrySink) {
        for (key, metric) in other.metrics {
            match self.metrics.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(metric);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => match (e.get_mut(), metric) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(b),
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(&b),
                    _ => debug_assert!(false, "metric kind mismatch on merge"),
                },
            }
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

/// Session-level telemetry: the enable gate plus the merge target for all
/// per-worker sinks. Shared across the analysis as `Arc<Telemetry>`.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: AtomicBool,
    merged: Mutex<TelemetrySink>,
}

impl Telemetry {
    /// A new registry with the given enable state.
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            enabled: AtomicBool::new(enabled),
            merged: Mutex::new(TelemetrySink::new()),
        }
    }

    /// Whether recording is on. A single relaxed atomic load — this is the
    /// whole cost of disabled telemetry on shared paths.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Merges a worker's shard into the session totals.
    pub fn merge(&self, sink: TelemetrySink) {
        if sink.is_empty() {
            return;
        }
        self.merged.lock().unwrap().merge(sink);
    }

    /// Records directly into the merged sink (for one-shot stage-level
    /// events outside the per-worker hot paths).
    pub fn record_direct(&self, f: impl FnOnce(&mut TelemetrySink)) {
        if !self.is_enabled() {
            return;
        }
        f(&mut self.merged.lock().unwrap());
    }

    /// Takes a snapshot of everything merged so far, sorted by
    /// `(name, label)` so output is deterministic.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let merged = self.merged.lock().unwrap();
        let mut entries: Vec<MetricEntry> = merged
            .metrics
            .iter()
            .map(|((name, label), metric)| MetricEntry {
                name: (*name).to_owned(),
                label: label.as_ref().map(|l| l.to_string()),
                metric: metric.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        TelemetrySnapshot { entries }
    }
}

/// A span timer: measures wall-clock from construction to [`Span::finish`]
/// and records it into a histogram. When telemetry is disabled the
/// constructor takes one branch and never reads the clock.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span, reading the clock only when `enabled` is true.
    #[inline]
    pub fn start(enabled: bool, name: &'static str) -> Span {
        Span {
            name,
            start: if enabled { Some(Instant::now()) } else { None },
        }
    }

    /// Finishes the span into `sink` (no-op when started disabled).
    pub fn finish(self, sink: &mut TelemetrySink) {
        self.finish_labeled(sink, None);
    }

    /// Finishes the span with a label, e.g. the root function name.
    pub fn finish_labeled(self, sink: &mut TelemetrySink, label: Option<Box<str>>) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.record_ns(self.name, label, ns);
        }
    }

    /// Whether the span is live (telemetry was enabled at start).
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }
}

/// Starts a [`Span`]: `span!(enabled, "alias.resolve")`. Sugar so call
/// sites read as annotations rather than plumbing.
#[macro_export]
macro_rules! span {
    ($enabled:expr, $name:literal) => {
        $crate::telemetry::Span::start($enabled, $name)
    };
}

/// One metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Dotted metric name (see module docs for the catalog).
    pub name: String,
    /// Optional label, e.g. a function name.
    pub label: Option<String>,
    /// The recorded value.
    pub metric: Metric,
}

/// An immutable, sorted view of everything recorded during one analysis.
/// Carried on [`crate::driver::AnalysisOutcome`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// All metrics, sorted by `(name, label)`.
    pub entries: Vec<MetricEntry>,
}

impl TelemetrySnapshot {
    /// Whether nothing was recorded (telemetry disabled).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by name and label.
    pub fn get(&self, name: &str, label: Option<&str>) -> Option<&Metric> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.label.as_deref() == label)
            .map(|e| &e.metric)
    }

    /// The value of an unlabelled counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name, None) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Sums a counter across all its labels.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match &e.metric {
                Metric::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// The value of a gauge (None when absent).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name, None) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// An unlabelled histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name, None) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Only the counter entries, for exactness comparisons across thread
    /// counts (durations and gauges are timing-dependent).
    pub fn counters(&self) -> Vec<(&str, Option<&str>, u64)> {
        self.entries
            .iter()
            .filter_map(|e| match &e.metric {
                Metric::Counter(c) => Some((e.name.as_str(), e.label.as_deref(), *c)),
                _ => None,
            })
            .collect()
    }

    /// Serializes the snapshot. Schema (`telemetry` object in the
    /// `--stats-json` document):
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "metrics": [
    ///     {"name": "path.paths", "kind": "counter", "value": 42},
    ///     {"name": "driver.threads", "kind": "gauge", "value": 8},
    ///     {"name": "explore.root", "label": "probe", "kind": "histogram",
    ///      "count": 1, "total_ns": 1200, "min_ns": 1200, "max_ns": 1200,
    ///      "buckets": [[11, 1]]}
    ///   ]
    /// }
    /// ```
    ///
    /// `label` is omitted when absent; `buckets` is sparse
    /// `[bucket_index, count]` pairs over the fixed log2 buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {TELEMETRY_SCHEMA_VERSION},\n  \"metrics\": ["
        );
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {{\"name\": {}", json::quote(&e.name));
            if let Some(label) = &e.label {
                let _ = write!(out, ", \"label\": {}", json::quote(label));
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ", \"kind\": \"counter\", \"value\": {c}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ", \"kind\": \"gauge\", \"value\": {g}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        ", \"kind\": \"histogram\", \"count\": {}, \"total_ns\": {}, \
                         \"min_ns\": {}, \"max_ns\": {}, \"buckets\": [",
                        h.count,
                        h.total_ns,
                        if h.count == 0 { 0 } else { h.min_ns },
                        h.max_ns
                    );
                    for (j, (idx, c)) in h.sparse_buckets().iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{idx}, {c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}");
        out
    }

    /// Renders the human `--profile` table: stage wall-clock breakdown,
    /// top-`top_n` slowest roots, cache hit rates, and solver traffic.
    pub fn render_profile(&self, top_n: usize) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry was disabled; nothing to profile\n");
            return out;
        }

        // Stage breakdown.
        let stages = [
            ("collect", "stage.collect"),
            ("explore", "stage.explore"),
            ("filter", "stage.filter"),
        ];
        let total_ns: u64 = stages
            .iter()
            .filter_map(|(_, m)| self.histogram(m))
            .map(|h| h.total_ns)
            .sum();
        out.push_str("stage breakdown\n");
        for (label, metric) in stages {
            let ns = self.histogram(metric).map_or(0, |h| h.total_ns);
            let pct = if total_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / total_ns as f64
            };
            let _ = writeln!(out, "  {label:<10} {:>12}  {pct:5.1}%", fmt_ns(ns));
        }

        // Slowest roots.
        let mut roots: Vec<(&str, u64)> = self
            .entries
            .iter()
            .filter(|e| e.name == "explore.root")
            .filter_map(|e| match (&e.label, &e.metric) {
                (Some(l), Metric::Histogram(h)) => Some((l.as_str(), h.total_ns)),
                _ => None,
            })
            .collect();
        roots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if !roots.is_empty() {
            let labeled_counter = |name: &str, label: &str| match self.get(name, Some(label)) {
                Some(Metric::Counter(c)) => *c,
                _ => 0,
            };
            let _ = writeln!(
                out,
                "top {} slowest roots ({:<28} {:>12} {:>8} {:>10})",
                top_n.min(roots.len()),
                "root",
                "time",
                "forks",
                "copied"
            );
            for (name, ns) in roots.iter().take(top_n) {
                let forks = labeled_counter("driver.explore.fork.forks", name);
                let copied = labeled_counter("driver.explore.fork.bytes_copied", name);
                let _ = writeln!(
                    out,
                    "  {name:<28} {:>12} {forks:>8} {:>10}",
                    fmt_ns(*ns),
                    fmt_bytes(copied)
                );
            }
        }

        // Cache hit rates.
        let hits = self.counter("validate.cache_hit");
        let misses = self.counter("validate.cache_miss");
        if hits + misses > 0 {
            let _ = writeln!(
                out,
                "validation cache: {hits} hits / {misses} misses ({:.1}% hit rate)",
                100.0 * hits as f64 / (hits + misses) as f64
            );
        }

        // Solver traffic.
        let solves = self.counter("smt.solve_calls");
        if solves > 0 {
            let _ = writeln!(
                out,
                "smt: {solves} solve calls, {} push / {} pop, max scope depth {}, \
                 {} propagation steps",
                self.counter("smt.push"),
                self.counter("smt.pop"),
                self.gauge("smt.scope_depth.max").unwrap_or(0),
                self.counter("smt.propagations")
            );
        }

        // Volume summary.
        let _ = writeln!(
            out,
            "volume: {} paths, {} insts, {} alias ops, {} typestate transitions, \
             {} constraints",
            self.counter("path.paths"),
            self.counter("path.insts"),
            self.counter_sum("alias.op"),
            self.counter("typestate.transitions"),
            self.counter("constraints.emitted")
        );
        // Branch-fork costs (copy-on-write path state).
        let forks = self.counter_sum("driver.explore.fork.forks");
        if forks > 0 {
            let _ = writeln!(
                out,
                "forks: {forks} state forks, {} copied / {} shared, \
                 journal depth max {}, live state max {}",
                fmt_bytes(self.counter_sum("driver.explore.fork.bytes_copied")),
                fmt_bytes(self.counter("driver.explore.fork.bytes_shared")),
                self.gauge("driver.explore.fork.journal_depth.max")
                    .unwrap_or(0),
                fmt_bytes(
                    self.gauge("driver.explore.fork.live_bytes.max")
                        .unwrap_or(0) as u64
                )
            );
        }
        if let Some(threads) = self.gauge("driver.threads") {
            let _ = writeln!(
                out,
                "driver: {threads} threads, {} work steals",
                self.counter("driver.work_steals")
            );
        }
        // Fault containment — shown only when the recovery ladder actually
        // intervened, so fault-free profiles are unchanged.
        let quarantined = self.counter_sum("driver.recover.quarantined");
        let demoted = self.counter("driver.recover.demoted");
        let deadline_hits = self.counter("driver.recover.deadline_hits");
        let live_bytes_hits = self.counter("driver.recover.live_bytes_hits");
        if quarantined + demoted + deadline_hits + live_bytes_hits > 0 {
            let _ = writeln!(
                out,
                "recover: {quarantined} quarantined, {demoted} demoted, \
                 {deadline_hits} deadline trips, {live_bytes_hits} live-bytes trips"
            );
        }
        out
    }
}

/// Formats a byte count human-readably (B/KiB/MiB/GiB).
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Formats nanoseconds human-readably (ns/µs/ms/s).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Histogram::default();
        a.record(5);
        a.record(100);
        let mut b = Histogram::default();
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 112);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 100);
        assert_eq!(a.mean_ns(), 37);
    }

    #[test]
    fn sink_counter_and_gauge_merge() {
        let mut a = TelemetrySink::new();
        a.add("x", 2);
        a.gauge_max("g", 3);
        let mut b = TelemetrySink::new();
        b.add("x", 5);
        b.gauge_max("g", 1);
        b.add_labeled("alias.op", Some("move".into()), 4);
        a.merge(b);
        let tel = Telemetry::new(true);
        tel.merge(a);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("x"), 7);
        assert_eq!(snap.gauge("g"), Some(3));
        assert_eq!(snap.counter_sum("alias.op"), 4);
    }

    #[test]
    fn disabled_span_never_records() {
        let span = Span::start(false, "stage.collect");
        assert!(!span.is_live());
        let mut sink = TelemetrySink::new();
        span.finish(&mut sink);
        assert!(sink.is_empty());
    }

    #[test]
    fn enabled_span_records_histogram() {
        let span = Span::start(true, "stage.collect");
        let mut sink = TelemetrySink::new();
        span.finish(&mut sink);
        let tel = Telemetry::new(true);
        tel.merge(sink);
        let h = tel.snapshot();
        assert_eq!(h.histogram("stage.collect").unwrap().count, 1);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let mut sink = TelemetrySink::new();
        sink.add("z.last", 1);
        sink.add("a.first", 1);
        sink.add_labeled("m.mid", Some("b".into()), 1);
        sink.add_labeled("m.mid", Some("a".into()), 1);
        let tel = Telemetry::new(true);
        tel.merge(sink);
        let names: Vec<String> = tel
            .snapshot()
            .entries
            .iter()
            .map(|e| format!("{}/{}", e.name, e.label.as_deref().unwrap_or("-")))
            .collect();
        assert_eq!(names, ["a.first/-", "m.mid/a", "m.mid/b", "z.last/-"]);
    }

    #[test]
    fn snapshot_json_parses_and_round_trips_counters() {
        let mut sink = TelemetrySink::new();
        sink.add("path.paths", 42);
        sink.gauge_max("driver.threads", 8);
        sink.record_ns("explore.root", Some("probe".into()), 1200);
        let tel = Telemetry::new(true);
        tel.merge(sink);
        let snap = tel.snapshot();
        let text = snap.to_json();
        let v = crate::json::JsonValue::parse(&text).expect("snapshot JSON must parse");
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(TELEMETRY_SCHEMA_VERSION as u64)
        );
        let metrics = v.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 3);
        let paths = metrics
            .iter()
            .find(|m| m.get("name").unwrap().as_str() == Some("path.paths"))
            .unwrap();
        assert_eq!(paths.get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(paths.get("value").unwrap().as_u64(), Some(42));
        let hist = metrics
            .iter()
            .find(|m| m.get("kind").unwrap().as_str() == Some("histogram"))
            .unwrap();
        assert_eq!(hist.get("label").unwrap().as_str(), Some("probe"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("total_ns").unwrap().as_u64(), Some(1200));
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].as_array().unwrap()[0].as_u64(), Some(11));
    }

    #[test]
    fn profile_render_mentions_stages_and_caches() {
        let mut sink = TelemetrySink::new();
        sink.record_ns("stage.collect", None, 1_000);
        sink.record_ns("stage.explore", None, 8_000);
        sink.record_ns("stage.filter", None, 1_000);
        sink.record_ns("explore.root", Some("slow_fn".into()), 7_000);
        sink.add("validate.cache_hit", 3);
        sink.add("validate.cache_miss", 1);
        let tel = Telemetry::new(true);
        tel.merge(sink);
        let text = tel.snapshot().render_profile(5);
        assert!(text.contains("stage breakdown"), "{text}");
        assert!(text.contains("explore"), "{text}");
        assert!(text.contains("80.0%"), "{text}");
        assert!(text.contains("slow_fn"), "{text}");
        assert!(text.contains("75.0% hit rate"), "{text}");
    }

    #[test]
    fn profile_recovery_line_gated_on_recover_counters() {
        let tel = Telemetry::new(true);
        let mut sink = TelemetrySink::new();
        sink.record_ns("stage.explore", None, 1_000);
        tel.merge(sink);
        let quiet = tel.snapshot().render_profile(5);
        assert!(!quiet.contains("recover:"), "{quiet}");

        let mut sink = TelemetrySink::new();
        sink.add_labeled("driver.recover.quarantined", Some("explore".into()), 2);
        sink.add("driver.recover.demoted", 1);
        sink.add("driver.recover.deadline_hits", 3);
        tel.merge(sink);
        let noisy = tel.snapshot().render_profile(5);
        assert!(
            noisy.contains(
                "recover: 2 quarantined, 1 demoted, 3 deadline trips, 0 live-bytes trips"
            ),
            "{noisy}"
        );
    }

    #[test]
    fn merge_order_does_not_change_counters() {
        let mk = |a: u64, b: u64| {
            let mut s = TelemetrySink::new();
            s.add("x", a);
            s.add_labeled("y", Some("l".into()), b);
            s
        };
        let t1 = Telemetry::new(true);
        t1.merge(mk(1, 10));
        t1.merge(mk(2, 20));
        let t2 = Telemetry::new(true);
        t2.merge(mk(2, 20));
        t2.merge(mk(1, 10));
        assert_eq!(t1.snapshot().counters(), t2.snapshot().counters());
    }

    #[test]
    fn span_macro_compiles() {
        let s = span!(true, "stage.filter");
        assert!(s.is_live());
    }
}
