//! The persistent analysis service: a newline-delimited JSON protocol
//! over stdin/stdout or a unix socket, serving one warm
//! [`AnalysisSession`] to many clients.
//!
//! # Protocol (version [`SERVE_PROTOCOL_VERSION`])
//!
//! One request per line, one response line per request, in order:
//!
//! ```json
//! {"id": 1, "op": "analyze", "files": [{"name": "a.c", "text": "..."}]}
//! {"id": 2, "op": "ping"}
//! {"id": 3, "op": "stats"}
//! {"id": 4, "op": "shutdown"}
//! ```
//!
//! Every response carries `protocol_version`, the echoed `id` (string,
//! integer, boolean or null), and `ok`. An `analyze` response embeds the
//! versioned report document under `"report"` (see
//! [`crate::report::Report::to_json`]) and the request's incremental
//! counters under `"serve"`:
//!
//! ```json
//! {"protocol_version": 1, "id": 1, "ok": true, "op": "analyze",
//!  "report": {"schema_version": 1, "reports": [...]},
//!  "serve": {"roots": 3, "dirty_roots": 1, "clean_roots": 2,
//!            "changed_functions": 1, "warm_start": true}}
//! ```
//!
//! A `stats` response reports the running totals since the daemon
//! started. Failures (bad JSON, unknown op, compile errors) produce
//! `{"ok": false, "error": "..."}` and never kill the daemon; only
//! `shutdown` (or closing stdin in stdio mode) ends the serve loop.
//!
//! # Batch queue
//!
//! The unix-socket daemon ([`serve_unix`]) accepts many concurrent
//! connections; every request line is forwarded to a single worker thread
//! that owns the session, so requests are analyzed strictly in arrival
//! order against one warm cache — concurrent clients share every
//! previously computed root summary and validation verdict.

use crate::json::{quote, JsonValue};
use crate::session::{AnalysisRequest, AnalysisSession};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Version of the request/response protocol. Bump on any incompatible
/// change; responses always carry it so clients can check.
pub const SERVE_PROTOCOL_VERSION: u64 = 1;

/// Hardening knobs for a serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Longest request line accepted, in bytes. An oversized frame is
    /// discarded up to its newline and answered with an error response —
    /// the connection (and the daemon) stay up, and framing re-synchronizes
    /// at the next line. `0` means unlimited.
    pub max_request_bytes: usize,
    /// Per-request reply deadline for the socket daemon, in milliseconds.
    /// A request that exceeds it gets a timeout error response while the
    /// worker finishes in the background (later requests queue behind it).
    /// `0` disables the deadline. Ignored by the stdio transport, which is
    /// single-threaded by design.
    pub request_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_request_bytes: 8 * 1024 * 1024,
            request_timeout_ms: 0,
        }
    }
}

/// One framed request line, read with a size bound.
enum Frame {
    /// End of stream (no more requests).
    Eof,
    /// A complete request line (without the newline).
    Line(String),
    /// A line longer than the bound; carries the discarded byte count.
    Oversized(usize),
}

/// Reads one newline-terminated frame without buffering more than `max`
/// bytes of it. Unlike `BufRead::read_line`, a hostile or buggy client
/// streaming an endless line cannot balloon daemon memory: once the bound
/// is crossed the remainder is consumed and dropped chunk-by-chunk until
/// the newline, keeping the stream synchronized for the next request.
fn read_frame<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut dropped = false;
    let mut total = 0usize;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if total == 0 {
                Frame::Eof
            } else if dropped {
                Frame::Oversized(total)
            } else {
                Frame::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !dropped {
                    line.extend_from_slice(&buf[..pos]);
                }
                total += pos + 1;
                reader.consume(pos + 1);
                return Ok(if dropped || (max > 0 && line.len() > max) {
                    Frame::Oversized(total)
                } else {
                    Frame::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            None => {
                let n = buf.len();
                total += n;
                if !dropped {
                    line.extend_from_slice(buf);
                    if max > 0 && line.len() > max {
                        dropped = true;
                        line = Vec::new();
                    }
                }
                reader.consume(n);
            }
        }
    }
}

/// Running totals across every request a serve loop has handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTotals {
    /// Requests handled (any op, including failed ones).
    pub requests: u64,
    /// `analyze` requests that completed successfully.
    pub analyzed: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
    /// Sum of dirty roots over all analyze requests.
    pub dirty_roots: u64,
    /// Sum of clean (cache-served) roots over all analyze requests.
    pub clean_roots: u64,
    /// Sum of changed functions over all analyze requests.
    pub changed_functions: u64,
}

/// Renders the scalar `id` a request carried (anything non-scalar echoes
/// as `null` — the protocol promises echo, not arbitrary re-serialization).
fn render_id(id: Option<&JsonValue>) -> String {
    match id {
        Some(JsonValue::Int(i)) => i.to_string(),
        Some(JsonValue::Str(s)) => quote(s),
        Some(JsonValue::Bool(b)) => b.to_string(),
        _ => "null".to_owned(),
    }
}

fn error_response(id: &str, message: &str) -> String {
    format!(
        "{{\"protocol_version\": {SERVE_PROTOCOL_VERSION}, \"id\": {id}, \"ok\": false, \"error\": {}}}",
        quote(message)
    )
}

/// Handles one request line. Returns the response line and whether the
/// serve loop should stop (a `shutdown` request).
pub fn handle_line(
    session: &mut AnalysisSession,
    line: &str,
    totals: &mut ServeTotals,
) -> (String, bool) {
    totals.requests += 1;
    let doc = match JsonValue::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            totals.errors += 1;
            return (
                error_response("null", &format!("bad request JSON: {e}")),
                false,
            );
        }
    };
    let id = render_id(doc.get("id"));
    let op = doc.get("op").and_then(JsonValue::as_str).unwrap_or("");
    match op {
        "ping" => (
            format!(
                "{{\"protocol_version\": {SERVE_PROTOCOL_VERSION}, \"id\": {id}, \"ok\": true, \"op\": \"ping\"}}"
            ),
            false,
        ),
        "stats" => (
            format!(
                "{{\"protocol_version\": {SERVE_PROTOCOL_VERSION}, \"id\": {id}, \"ok\": true, \"op\": \"stats\", \
                 \"serve\": {{\"requests\": {}, \"analyzed\": {}, \"errors\": {}, \"dirty_roots\": {}, \
                 \"clean_roots\": {}, \"changed_functions\": {}}}}}",
                totals.requests,
                totals.analyzed,
                totals.errors,
                totals.dirty_roots,
                totals.clean_roots,
                totals.changed_functions
            ),
            false,
        ),
        "shutdown" => (
            format!(
                "{{\"protocol_version\": {SERVE_PROTOCOL_VERSION}, \"id\": {id}, \"ok\": true, \"op\": \"shutdown\"}}"
            ),
            true,
        ),
        "analyze" => {
            let mut request = AnalysisRequest::new();
            for item in doc
                .get("files")
                .and_then(JsonValue::as_array)
                .unwrap_or(&[])
            {
                let name = item.get("name").and_then(JsonValue::as_str).unwrap_or("");
                let text = item.get("text").and_then(JsonValue::as_str).unwrap_or("");
                request = request.file(name, text);
            }
            match session.analyze(&request) {
                Ok(outcome) => {
                    let inc = outcome.incremental;
                    totals.analyzed += 1;
                    totals.dirty_roots += inc.dirty_roots;
                    totals.clean_roots += inc.clean_roots;
                    totals.changed_functions += inc.changed_functions;
                    (
                        format!(
                            "{{\"protocol_version\": {SERVE_PROTOCOL_VERSION}, \"id\": {id}, \"ok\": true, \"op\": \"analyze\", \
                             \"report\": {}, \
                             \"serve\": {{\"roots\": {}, \"dirty_roots\": {}, \"clean_roots\": {}, \
                             \"changed_functions\": {}, \"warm_start\": {}}}}}",
                            outcome.report.to_json(),
                            inc.roots,
                            inc.dirty_roots,
                            inc.clean_roots,
                            inc.changed_functions,
                            inc.warm_start
                        ),
                        false,
                    )
                }
                // `Internal` already reset the session's warm state; like
                // every other failure it is a response, not a daemon death.
                Err(e) => {
                    totals.errors += 1;
                    (error_response(&id, &e.to_string()), false)
                }
            }
        }
        other => {
            totals.errors += 1;
            (
                error_response(&id, &format!("unknown op `{other}` (expected analyze|ping|stats|shutdown)")),
                false,
            )
        }
    }
}

/// [`handle_line`] behind the worker's panic boundary: a panic escaping
/// the session (it has its own containment, so this is the last resort)
/// becomes an error response and a warm-state reset, never a dead loop.
fn handle_line_contained(
    session: &mut AnalysisSession,
    line: &str,
    totals: &mut ServeTotals,
) -> (String, bool) {
    match catch_unwind(AssertUnwindSafe(|| handle_line(session, line, totals))) {
        Ok(result) => result,
        Err(payload) => {
            session.reset_warm();
            totals.errors += 1;
            (
                error_response(
                    "null",
                    &format!("internal panic: {}", crate::driver::panic_reason(&*payload)),
                ),
                false,
            )
        }
    }
}

/// Renders the error response for a frame longer than the configured
/// [`ServeOptions::max_request_bytes`].
fn oversized_response(dropped: usize, max: usize) -> String {
    error_response(
        "null",
        &format!("request line of {dropped} bytes exceeds the {max}-byte limit"),
    )
}

/// Serves requests from `reader` to `writer` until `shutdown` or EOF —
/// the stdio transport, also what the in-process tests and benches drive.
/// Returns the accumulated totals. Uses [`ServeOptions::default`].
pub fn serve_loop<R: BufRead, W: Write>(
    session: &mut AnalysisSession,
    reader: R,
    writer: W,
) -> io::Result<ServeTotals> {
    serve_loop_with(session, reader, writer, ServeOptions::default())
}

/// [`serve_loop`] with explicit [`ServeOptions`].
pub fn serve_loop_with<R: BufRead, W: Write>(
    session: &mut AnalysisSession,
    mut reader: R,
    mut writer: W,
    options: ServeOptions,
) -> io::Result<ServeTotals> {
    let mut totals = ServeTotals::default();
    loop {
        let (response, quit) = match read_frame(&mut reader, options.max_request_bytes)? {
            Frame::Eof => break,
            Frame::Oversized(dropped) => {
                totals.requests += 1;
                totals.errors += 1;
                (
                    oversized_response(dropped, options.max_request_bytes),
                    false,
                )
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line_contained(session, &line, &mut totals)
            }
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if quit {
            break;
        }
    }
    Ok(totals)
}

/// The unix-socket daemon (linux/macOS only).
#[cfg(unix)]
pub mod unix {
    use super::*;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc};

    struct Job {
        line: String,
        reply: mpsc::Sender<String>,
    }

    /// Binds `socket`, accepts connections until a `shutdown` request,
    /// and forwards every request line to one worker thread owning
    /// `session` (strict arrival order, shared warm cache). Returns the
    /// session (with its final telemetry) and the request totals. Uses
    /// [`ServeOptions::default`].
    pub fn serve_unix(
        session: AnalysisSession,
        socket: &Path,
    ) -> io::Result<(AnalysisSession, ServeTotals)> {
        serve_unix_with(session, socket, ServeOptions::default())
    }

    /// [`serve_unix`] with explicit [`ServeOptions`]: request frames are
    /// bounded per connection, and with a non-zero
    /// [`ServeOptions::request_timeout_ms`] a client whose request takes
    /// too long gets a timeout error while the worker finishes behind it.
    pub fn serve_unix_with(
        session: AnalysisSession,
        socket: &Path,
        options: ServeOptions,
    ) -> io::Result<(AnalysisSession, ServeTotals)> {
        let _ = std::fs::remove_file(socket);
        let listener = UnixListener::bind(socket)?;
        let (tx, rx) = mpsc::channel::<Job>();
        let shutdown = Arc::new(AtomicBool::new(false));

        let worker = {
            let shutdown = Arc::clone(&shutdown);
            let socket = socket.to_path_buf();
            let mut session = session;
            std::thread::spawn(move || {
                let mut totals = ServeTotals::default();
                while let Ok(job) = rx.recv() {
                    let (response, quit) =
                        handle_line_contained(&mut session, &job.line, &mut totals);
                    let _ = job.reply.send(response);
                    if quit {
                        shutdown.store(true, Ordering::SeqCst);
                        // Wake the accept loop so it can observe the flag.
                        let _ = UnixStream::connect(&socket);
                        break;
                    }
                }
                (session, totals)
            })
        };

        let mut conns = Vec::new();
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let tx = tx.clone();
            conns.push(std::thread::spawn(move || {
                let mut reader = io::BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                loop {
                    let response = match read_frame(&mut reader, options.max_request_bytes) {
                        Err(_) | Ok(Frame::Eof) => break,
                        Ok(Frame::Oversized(dropped)) => {
                            // Refused locally; the worker (and its totals)
                            // never see the frame, and the connection is
                            // already re-synchronized at the newline.
                            oversized_response(dropped, options.max_request_bytes)
                        }
                        Ok(Frame::Line(line)) => {
                            if line.trim().is_empty() {
                                continue;
                            }
                            let (reply_tx, reply_rx) = mpsc::channel();
                            if tx
                                .send(Job {
                                    line,
                                    reply: reply_tx,
                                })
                                .is_ok()
                            {
                                let reply = if options.request_timeout_ms > 0 {
                                    reply_rx
                                        .recv_timeout(std::time::Duration::from_millis(
                                            options.request_timeout_ms,
                                        ))
                                        .map_err(|e| match e {
                                            mpsc::RecvTimeoutError::Timeout => error_response(
                                                "null",
                                                &format!(
                                                    "request timed out after {} ms",
                                                    options.request_timeout_ms
                                                ),
                                            ),
                                            mpsc::RecvTimeoutError::Disconnected => {
                                                error_response("null", "daemon shut down")
                                            }
                                        })
                                } else {
                                    reply_rx
                                        .recv()
                                        .map_err(|_| error_response("null", "daemon shut down"))
                                };
                                match reply {
                                    Ok(r) | Err(r) => r,
                                }
                            } else {
                                error_response("null", "daemon shut down")
                            }
                        }
                    };
                    if writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }
        drop(tx);
        drop(listener);
        // Drain the connection threads so every in-flight response (the
        // shutdown acknowledgement in particular) reaches its client
        // before the daemon returns. Open connections end at client EOF;
        // any late request they send gets a "daemon shut down" error.
        for conn in conns {
            let _ = conn.join();
        }
        let _ = std::fs::remove_file(socket);
        worker
            .join()
            .map_err(|_| io::Error::other("serve worker panicked"))
    }

    /// Sends one request line to a daemon at `socket` and returns its
    /// response line — the `pata client` primitive.
    pub fn client_request(socket: &Path, line: &str) -> io::Result<String> {
        let mut stream = UnixStream::connect(socket)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut reader = io::BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response)?;
        Ok(response.trim_end().to_owned())
    }
}

#[cfg(unix)]
pub use unix::{client_request, serve_unix, serve_unix_with};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;

    fn session() -> AnalysisSession {
        AnalysisSession::new(AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        })
    }

    const SRC: &str = "int probe(int *p) { if (p == NULL) { } return *p; }";

    fn analyze_line(id: u64, name: &str, text: &str) -> String {
        format!(
            "{{\"id\": {id}, \"op\": \"analyze\", \"files\": [{{\"name\": {}, \"text\": {}}}]}}",
            quote(name),
            quote(text)
        )
    }

    #[test]
    fn stdio_round_trip_reports_and_stats() {
        let mut s = session();
        let input = format!(
            "{}\n{}\n{{\"id\": 3, \"op\": \"stats\"}}\n{{\"id\": 4, \"op\": \"shutdown\"}}\n",
            analyze_line(1, "t.c", SRC),
            analyze_line(2, "t.c", SRC),
        );
        let mut out = Vec::new();
        let totals = serve_loop(&mut s, input.as_bytes(), &mut out).unwrap();
        assert_eq!(totals.requests, 4);
        assert_eq!(totals.analyzed, 2);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        let first = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(first.get("id").unwrap().as_u64(), Some(1));
        assert_eq!(
            first.get("protocol_version").unwrap().as_u64(),
            Some(SERVE_PROTOCOL_VERSION)
        );
        assert!(first.get("report").unwrap().get("reports").is_some());
        // The second identical request is served warm.
        let second = JsonValue::parse(lines[1]).unwrap();
        let serve = second.get("serve").unwrap();
        assert_eq!(serve.get("dirty_roots").unwrap().as_u64(), Some(0));
        assert_eq!(serve.get("warm_start").unwrap().as_bool(), Some(true));
        // Identical report bytes, cold vs warm.
        assert_eq!(
            format!("{:?}", first.get("report")),
            format!("{:?}", second.get("report"))
        );
        let stats = JsonValue::parse(lines[2]).unwrap();
        assert_eq!(
            stats
                .get("serve")
                .unwrap()
                .get("analyzed")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        let bye = JsonValue::parse(lines[3]).unwrap();
        assert_eq!(bye.get("op").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn bad_json_and_unknown_op_do_not_kill_the_loop() {
        let mut s = session();
        let input =
            "this is not json\n{\"id\": \"x\", \"op\": \"frobnicate\"}\n{\"op\": \"ping\"}\n";
        let mut out = Vec::new();
        let totals = serve_loop(&mut s, input.as_bytes(), &mut out).unwrap();
        assert_eq!(totals.requests, 3);
        assert_eq!(totals.errors, 2);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        let bad = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
        let unknown = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(unknown.get("id").unwrap().as_str(), Some("x"));
        assert!(unknown
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("frobnicate"));
        let ping = JsonValue::parse(lines[2]).unwrap();
        assert_eq!(ping.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn oversized_frame_gets_error_and_loop_survives() {
        let mut s = session();
        let big = format!("{{\"op\": \"ping\", \"pad\": \"{}\"}}", "x".repeat(4096));
        let input = format!("{big}\n{{\"id\": 2, \"op\": \"ping\"}}\n");
        let mut out = Vec::new();
        let totals = serve_loop_with(
            &mut s,
            input.as_bytes(),
            &mut out,
            ServeOptions {
                max_request_bytes: 256,
                request_timeout_ms: 0,
            },
        )
        .unwrap();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.errors, 1);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        let refused = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(refused.get("ok").unwrap().as_bool(), Some(false));
        assert!(refused
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("256-byte limit"));
        // Framing re-synchronized: the next request still works.
        let ping = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(ping.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn oversized_frame_larger_than_bufreader_chunk() {
        let mut s = session();
        // Longer than BufReader's 8 KiB internal buffer: exercises the
        // chunked discard path of read_frame.
        let big = "y".repeat(64 * 1024);
        let input = format!("{big}\n{{\"op\": \"ping\"}}\n");
        let mut out = Vec::new();
        let totals = serve_loop_with(
            &mut s,
            io::BufReader::new(input.as_bytes()),
            &mut out,
            ServeOptions {
                max_request_bytes: 1024,
                request_timeout_ms: 0,
            },
        )
        .unwrap();
        assert_eq!(totals.errors, 1);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("65537 bytes"));
        assert!(lines[1].contains("\"ok\": true"));
    }

    #[test]
    fn session_panic_becomes_error_response_and_loop_survives() {
        use crate::faultinject::FaultPlan;
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::parse("session.analyze@1").unwrap());
        let mut s = AnalysisSession::new(
            AnalysisConfig::builder()
                .threads(1)
                .fault_plan(plan)
                .build()
                .unwrap(),
        );
        let input = format!(
            "{}\n{}\n",
            analyze_line(1, "t.c", SRC),
            analyze_line(2, "t.c", SRC)
        );
        let mut out = Vec::new();
        let totals = serve_loop(&mut s, input.as_bytes(), &mut out).unwrap();
        assert_eq!(totals.errors, 1);
        assert_eq!(totals.analyzed, 1);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        let first = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(false));
        assert!(first
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("fault injected: session.analyze"));
        // The daemon answers the next request normally (cold restart).
        let second = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn compile_error_is_an_error_response() {
        let mut s = session();
        let mut totals = ServeTotals::default();
        let (response, quit) =
            handle_line(&mut s, &analyze_line(9, "bad.c", "int f( {"), &mut totals);
        assert!(!quit);
        let doc = JsonValue::parse(&response).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(9));
    }

    #[cfg(unix)]
    #[test]
    fn unix_daemon_serves_concurrent_clients_and_shuts_down() {
        let dir = std::env::temp_dir().join(format!("pata-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("pata.sock");
        let s = session();
        let daemon = {
            let socket = socket.clone();
            std::thread::spawn(move || serve_unix(s, &socket).unwrap())
        };
        // Wait for the socket to appear.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let first = client_request(&socket, &analyze_line(1, "t.c", SRC)).unwrap();
        // A second client shares the first client's warm cache.
        let second = client_request(&socket, &analyze_line(2, "t.c", SRC)).unwrap();
        let doc = JsonValue::parse(&second).unwrap();
        assert_eq!(
            doc.get("serve")
                .unwrap()
                .get("dirty_roots")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        let first_doc = JsonValue::parse(&first).unwrap();
        assert_eq!(
            format!("{:?}", first_doc.get("report")),
            format!("{:?}", doc.get("report"))
        );
        let bye = client_request(&socket, "{\"id\": 3, \"op\": \"shutdown\"}").unwrap();
        assert!(bye.contains("\"ok\": true"));
        let (_session, totals) = daemon.join().unwrap();
        assert_eq!(totals.analyzed, 2);
        assert!(!socket.exists(), "socket file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
