//! Analysis statistics — the counters behind Table 5 of the paper
//! (typestates alias-aware vs. unaware, SMT constraints alias-aware vs.
//! unaware, dropped repeated/false bugs, analyzed files/LOC, time).

use std::ops::AddAssign;
use std::time::Duration;

/// Counters accumulated across the whole analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Source files in the analyzed module.
    pub files_analyzed: u64,
    /// Lines of code in the analyzed module.
    pub loc_analyzed: u64,
    /// Analysis roots (module interface functions).
    pub roots: u64,
    /// Completed control-flow paths explored.
    pub paths_explored: u64,
    /// Instructions processed (path-sensitively, counting revisits).
    pub insts_processed: u64,
    /// Typestate transitions with alias-aware sharing (one per alias set) —
    /// Table 5 "Typestates (alias-aware)".
    pub typestates_aware: u64,
    /// What the same transitions would cost per-variable — Table 5
    /// "Typestates (unaware)".
    pub typestates_unaware: u64,
    /// SMT constraints emitted with one symbol per alias set — Table 5
    /// "SMT constraints (alias-aware)".
    pub constraints_aware: u64,
    /// What the same paths would emit with one symbol per variable,
    /// including the explicit copy equalities and implicit field-equality
    /// constraints of §3.3/Fig. 9 — Table 5 "SMT constraints (unaware)".
    pub constraints_unaware: u64,
    /// Candidate bugs dropped because their problematic instructions match
    /// an already-recorded candidate (§4 P3 "repeated bugs").
    pub repeated_bugs_dropped: u64,
    /// Candidates whose path constraints were unsatisfiable (§3.3).
    pub false_bugs_dropped: u64,
    /// Candidates surviving dedup (input to validation).
    pub candidates: u64,
    /// Final reported bugs.
    pub reported: u64,
    /// Roots whose exploration hit a budget cap.
    pub budget_exhausted_roots: u64,
    /// Stage-2 conjunctions answered from the validation cache.
    pub validation_cache_hits: u64,
    /// Stage-2 conjunctions solved and inserted into the validation cache.
    pub validation_cache_misses: u64,
    /// Constraints reused across consecutive stage-2 solves through the
    /// incremental solver's assertion scopes.
    pub validation_scope_reuse: u64,
    /// Roots a worker stole from another worker's queue (root scheduler).
    pub work_steals: u64,
    /// Stage-1 subsumption hits: blocks whose exact entry state was already
    /// explored, answered by replaying the recorded effects.
    pub exploration_cache_hits: u64,
    /// Stage-1 callee-summary hits: inlined calls answered by replaying a
    /// recorded effect journal instead of re-exploring the callee.
    pub callee_memo_hits: u64,
    /// Instructions accounted through cache replay rather than executed.
    /// `insts_processed - insts_replayed` is the live DFS step count.
    pub insts_replayed: u64,
    /// Wall-clock analysis time.
    pub time: Duration,
}

impl AnalysisStats {
    /// Fraction of typestates saved by alias-aware sharing (paper §5.1
    /// reports 49.8% dropped).
    pub fn typestates_dropped_ratio(&self) -> f64 {
        if self.typestates_unaware == 0 {
            return 0.0;
        }
        1.0 - (self.typestates_aware as f64 / self.typestates_unaware as f64)
    }

    /// Fraction of SMT constraints saved by alias-aware symbol merging
    /// (paper §5.1 reports 87.3% dropped).
    pub fn constraints_dropped_ratio(&self) -> f64 {
        if self.constraints_unaware == 0 {
            return 0.0;
        }
        1.0 - (self.constraints_aware as f64 / self.constraints_unaware as f64)
    }

    /// Stage-1 DFS steps actually executed (replayed work excluded).
    pub fn live_steps(&self) -> u64 {
        self.insts_processed.saturating_sub(self.insts_replayed)
    }

    /// The exploration-volume delta accumulated since `base` — only the
    /// counters a path subtree mutates (paths, instructions, typestate and
    /// constraint volumes). Candidate/drop counters are deliberately left
    /// zero: cache replay recomputes them through the live dedup filter.
    pub(crate) fn exploration_delta(&self, base: &AnalysisStats) -> AnalysisStats {
        AnalysisStats {
            paths_explored: self.paths_explored - base.paths_explored,
            insts_processed: self.insts_processed - base.insts_processed,
            typestates_aware: self.typestates_aware - base.typestates_aware,
            typestates_unaware: self.typestates_unaware - base.typestates_unaware,
            constraints_aware: self.constraints_aware - base.constraints_aware,
            constraints_unaware: self.constraints_unaware - base.constraints_unaware,
            ..AnalysisStats::default()
        }
    }
}

/// One root that hit an exploration budget — the per-root detail behind the
/// aggregate [`AnalysisStats::budget_exhausted_roots`] counter, surfaced in
/// `--profile` and the report envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetNote {
    /// Root function name.
    pub root: String,
    /// Which budget tripped first: `"max_insts"` or `"max_paths"`.
    pub reason: String,
    /// Whether the exploration caches were disabled for this root: a root
    /// that exhausts its budget with caches enabled is deterministically
    /// re-explored cache-free, so budget-truncated verdicts stay
    /// bit-identical to a cache-disabled run.
    pub caches_disabled: bool,
}

impl AddAssign<&AnalysisStats> for AnalysisStats {
    fn add_assign(&mut self, rhs: &AnalysisStats) {
        self.files_analyzed += rhs.files_analyzed;
        self.loc_analyzed += rhs.loc_analyzed;
        self.roots += rhs.roots;
        self.paths_explored += rhs.paths_explored;
        self.insts_processed += rhs.insts_processed;
        self.typestates_aware += rhs.typestates_aware;
        self.typestates_unaware += rhs.typestates_unaware;
        self.constraints_aware += rhs.constraints_aware;
        self.constraints_unaware += rhs.constraints_unaware;
        self.repeated_bugs_dropped += rhs.repeated_bugs_dropped;
        self.false_bugs_dropped += rhs.false_bugs_dropped;
        self.candidates += rhs.candidates;
        self.reported += rhs.reported;
        self.budget_exhausted_roots += rhs.budget_exhausted_roots;
        self.validation_cache_hits += rhs.validation_cache_hits;
        self.validation_cache_misses += rhs.validation_cache_misses;
        self.validation_scope_reuse += rhs.validation_scope_reuse;
        self.work_steals += rhs.work_steals;
        self.exploration_cache_hits += rhs.exploration_cache_hits;
        self.callee_memo_hits += rhs.callee_memo_hits;
        self.insts_replayed += rhs.insts_replayed;
        self.time += rhs.time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = AnalysisStats {
            typestates_aware: 50,
            typestates_unaware: 100,
            constraints_aware: 10,
            constraints_unaware: 80,
            ..AnalysisStats::default()
        };
        assert!((s.typestates_dropped_ratio() - 0.5).abs() < 1e-9);
        assert!((s.constraints_dropped_ratio() - 0.875).abs() < 1e-9);
    }

    #[test]
    fn ratios_zero_safe() {
        let s = AnalysisStats::default();
        assert_eq!(s.typestates_dropped_ratio(), 0.0);
        assert_eq!(s.constraints_dropped_ratio(), 0.0);
    }

    #[test]
    fn accumulate() {
        let mut a = AnalysisStats {
            paths_explored: 1,
            ..AnalysisStats::default()
        };
        let b = AnalysisStats {
            paths_explored: 2,
            reported: 3,
            ..AnalysisStats::default()
        };
        a += &b;
        assert_eq!(a.paths_explored, 3);
        assert_eq!(a.reported, 3);
    }
}
