//! # pata — umbrella crate for the PATA reproduction
//!
//! Re-exports the whole workspace: the PIR intermediate representation
//! ([`ir`]), the mini-C front-end ([`cc`]), the conjunction SMT solver
//! ([`smt`]), the PATA analysis framework itself ([`core`]), the baseline
//! analyzers ([`baselines`]) and the synthetic OS corpus generator
//! ([`corpus`]).
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.

#![forbid(unsafe_code)]

pub use pata_baselines as baselines;
pub use pata_cc as cc;
pub use pata_core as core;
pub use pata_corpus as corpus;
pub use pata_ir as ir;
pub use pata_smt as smt;
