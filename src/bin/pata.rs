//! `pata` — command-line front-end for the PATA analysis framework.
//!
//! ```text
//! pata analyze <file.c>... [--checkers npd,uva,ml,dl,aiu,dbz,uaf] [--na]
//!              [--no-validate] [--no-validation-cache] [--resolve-fptrs]
//!              [--loops N] [--threads N] [--no-exploration-cache]
//!              [--no-callee-memo] [--fork-depth N] [--json] [--stats]
//!              [--stats-json PATH] [--profile]
//! pata corpus <linux|zephyr|riot|tencent> [--scale F] [--seed N] --out DIR
//! pata ir <file.c>...
//! pata fsm
//! ```
//!
//! * `analyze` — run PATA on mini-C source files and print reports.
//!   `--json` prints the versioned report document (see
//!   `pata_core::report::Report`); `--stats-json PATH` writes the telemetry
//!   snapshot (see `pata_core::telemetry::TelemetrySnapshot::to_json`);
//!   `--profile` prints a human-readable profile table to stderr.
//! * `corpus`  — write a generated OS model (and its ground-truth manifest
//!               as JSON) to a directory, for external tooling.
//! * `ir`      — dump the lowered PIR of the given sources.
//! * `fsm`     — print every built-in checker's FSM (paper Table 2/7).

use pata::core::{AliasMode, AnalysisConfig, BugKind, Pata, Report};
use pata::corpus::{Corpus, OsProfile};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "analyze" => cmd_analyze(rest),
        "corpus" => cmd_corpus(rest),
        "ir" => cmd_ir(rest),
        "fsm" => cmd_fsm(),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pata: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  pata analyze <file.c>... [--checkers LIST] [--na] [--no-validate]
               [--no-validation-cache] [--resolve-fptrs] [--loops N]
               [--threads N] [--no-exploration-cache] [--no-callee-memo]
               [--fork-depth N] [--json] [--stats] [--stats-json PATH]
               [--profile]
  pata corpus <linux|zephyr|riot|tencent> [--scale F] [--seed N] --out DIR
  pata ir <file.c>...
  pata fsm";

/// Splits `args` into flag map and positional arguments.
fn split_args(args: &[String]) -> Result<(Vec<String>, Vec<(String, Option<String>)>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let takes_value = matches!(
                name,
                "checkers"
                    | "loops"
                    | "threads"
                    | "fork-depth"
                    | "scale"
                    | "seed"
                    | "out"
                    | "stats-json"
            );
            let value = if takes_value {
                Some(
                    it.next()
                        .ok_or_else(|| format!("--{name} expects a value"))?
                        .clone(),
                )
            } else {
                None
            };
            flags.push((name.to_owned(), value));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, Option<String>)], name: &str) -> Option<&'a Option<String>> {
    flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn parse_checkers(spec: &str) -> Result<Vec<BugKind>, String> {
    spec.split(',')
        .map(|s| match s.trim().to_ascii_lowercase().as_str() {
            "npd" => Ok(BugKind::NullPointerDeref),
            "uva" => Ok(BugKind::UninitVarAccess),
            "ml" => Ok(BugKind::MemoryLeak),
            "dl" => Ok(BugKind::DoubleLock),
            "aiu" => Ok(BugKind::ArrayIndexUnderflow),
            "dbz" => Ok(BugKind::DivisionByZero),
            "uaf" => Ok(BugKind::UseAfterFree),
            "all" => Err("use --checkers npd,uva,ml,dl,aiu,dbz,uaf".to_owned()),
            other => Err(format!("unknown checker `{other}`")),
        })
        .collect()
}

fn compile_files(files: &[String]) -> Result<pata_ir::Module, String> {
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    let mut cc = pata::cc::Compiler::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        cc.add_source(f, &text);
    }
    cc.compile().map_err(|diags| {
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_args(args)?;
    let stats_json = flag(&flags, "stats-json").cloned().flatten();
    let profile = flag(&flags, "profile").is_some();
    let mut builder = AnalysisConfig::builder().telemetry(stats_json.is_some() || profile);
    if let Some(Some(spec)) = flag(&flags, "checkers") {
        builder = builder.checkers(parse_checkers(spec)?);
    }
    if flag(&flags, "na").is_some() {
        builder = builder.alias_mode(AliasMode::None);
    }
    if flag(&flags, "no-validate").is_some() {
        builder = builder.validate_paths(false);
    }
    if flag(&flags, "no-validation-cache").is_some() {
        builder = builder.validation_cache(false);
    }
    if flag(&flags, "resolve-fptrs").is_some() {
        builder = builder.resolve_fptrs(true);
    }
    if let Some(Some(n)) = flag(&flags, "loops") {
        builder =
            builder.loop_iterations(n.parse().map_err(|_| format!("bad --loops value `{n}`"))?);
    }
    if let Some(Some(n)) = flag(&flags, "threads") {
        builder = builder.threads(
            n.parse()
                .map_err(|_| format!("bad --threads value `{n}`"))?,
        );
    }
    if flag(&flags, "no-exploration-cache").is_some() {
        builder = builder.exploration_cache(false);
    }
    if flag(&flags, "no-callee-memo").is_some() {
        builder = builder.callee_memo(false);
    }
    if let Some(Some(n)) = flag(&flags, "fork-depth") {
        builder = builder.fork_depth(
            n.parse()
                .map_err(|_| format!("bad --fork-depth value `{n}`"))?,
        );
    }
    let config = builder
        .build()
        .map_err(|e| format!("bad configuration: {e}"))?;

    let module = compile_files(&files)?;
    let outcome = Pata::new(config).analyze(module);

    if flag(&flags, "json").is_some() {
        println!(
            "{}",
            Report::new(outcome.reports.clone())
                .with_budget_notes(outcome.budget_notes.clone())
                .to_json()
        );
    } else {
        for r in &outcome.reports {
            println!("{r}");
        }
        if outcome.reports.is_empty() {
            println!("no bugs found");
        }
    }
    if flag(&flags, "stats").is_some() {
        let s = &outcome.stats;
        eprintln!(
            "roots: {}  paths: {}  insts: {}",
            s.roots, s.paths_explored, s.insts_processed
        );
        eprintln!(
            "typestates aware/unaware: {}/{}  constraints aware/unaware: {}/{}",
            s.typestates_aware, s.typestates_unaware, s.constraints_aware, s.constraints_unaware
        );
        eprintln!(
            "dropped repeated: {}  dropped false: {}  reported: {}  time: {:?}",
            s.repeated_bugs_dropped, s.false_bugs_dropped, s.reported, s.time
        );
        eprintln!(
            "validation cache hits/misses: {}/{}  scope reuse: {}  work steals: {}",
            s.validation_cache_hits,
            s.validation_cache_misses,
            s.validation_scope_reuse,
            s.work_steals
        );
        eprintln!(
            "exploration cache hits: {}  callee memo hits: {}  live steps: {} ({} replayed)",
            s.exploration_cache_hits,
            s.callee_memo_hits,
            s.live_steps(),
            s.insts_replayed
        );
    }
    if let Some(path) = stats_json {
        std::fs::write(&path, outcome.telemetry.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if profile {
        eprint!("{}", outcome.telemetry.render_profile(10));
        for note in &outcome.budget_notes {
            eprintln!(
                "budget exhausted: root {} ({}){}",
                note.root,
                note.reason,
                if note.caches_disabled {
                    ""
                } else {
                    " [re-run with caches off]"
                }
            );
        }
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_args(args)?;
    let which = positional.first().map(String::as_str).unwrap_or("zephyr");
    let mut profile = match which {
        "linux" => OsProfile::linux(),
        "zephyr" => OsProfile::zephyr(),
        "riot" => OsProfile::riot(),
        "tencent" => OsProfile::tencent(),
        other => return Err(format!("unknown OS model `{other}`")),
    };
    if let Some(Some(s)) = flag(&flags, "scale") {
        profile = profile.with_scale(s.parse().map_err(|_| format!("bad --scale `{s}`"))?);
    }
    if let Some(Some(s)) = flag(&flags, "seed") {
        profile = profile.with_seed(s.parse().map_err(|_| format!("bad --seed `{s}`"))?);
    }
    let Some(Some(out_dir)) = flag(&flags, "out") else {
        return Err("--out DIR is required".to_owned());
    };

    let corpus = Corpus::generate(&profile);
    let root = std::path::Path::new(out_dir);
    for file in &corpus.files {
        let path = root.join(&file.path);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, &file.text).map_err(|e| e.to_string())?;
    }
    // Ground-truth manifest as JSON.
    let manifest_path = root.join("manifest.json");
    let mut f = std::fs::File::create(&manifest_path).map_err(|e| e.to_string())?;
    f.write_all(corpus.manifest.to_json().as_bytes())
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} files ({} LOC), {} bugs, {} traps -> {}",
        corpus.files.len(),
        corpus.loc(),
        corpus.manifest.bugs.len(),
        corpus.manifest.traps.len(),
        out_dir
    );
    Ok(())
}

fn cmd_ir(args: &[String]) -> Result<(), String> {
    let (files, _) = split_args(args)?;
    let module = compile_files(&files)?;
    print!("{}", pata_ir::print_module(&module));
    Ok(())
}

fn cmd_fsm() -> Result<(), String> {
    for kind in BugKind::ALL {
        let checker = kind.instantiate();
        let fsm = checker.fsm();
        println!("{} ({})", kind.as_str(), kind.abbrev());
        println!("  states: {}", fsm.states.join(", "));
        println!("  events: {}", fsm.events.join(", "));
        println!("  bug state: {}", fsm.bug_state);
    }
    Ok(())
}
