//! `pata` — command-line front-end for the PATA analysis framework.
//!
//! ```text
//! pata analyze <file.c>... [analysis knobs] [--store PATH] [--json]
//!              [--stats] [--stats-json PATH] [--profile]
//! pata serve   [analysis knobs] [--store PATH] [--stats-json PATH]
//!              (--socket PATH | --stdio)
//! pata client  --socket PATH [--op analyze|ping|stats|shutdown]
//!              [--id ID] [<file.c>...]
//! pata corpus <linux|zephyr|riot|tencent> [--scale F] [--seed N] --out DIR
//! pata ir <file.c>...
//! pata fsm
//! ```
//!
//! * `analyze` — run PATA on mini-C source files and print reports.
//!   With `--store PATH` the run opens a persistent analysis session:
//!   previously computed per-root results and validation verdicts are
//!   loaded from the store, only roots affected by changed functions are
//!   re-explored, and the refreshed store is written back.
//! * `serve`   — keep one warm session resident and answer
//!   newline-delimited JSON requests, either on a unix socket (many
//!   concurrent clients share the cache) or on stdin/stdout.
//! * `client`  — submit one request to a running `pata serve` daemon and
//!   print its response line (non-zero exit if the daemon reports an
//!   error).
//! * `corpus`  — write a generated OS model (and its ground-truth manifest
//!   as JSON) to a directory, for external tooling.
//! * `ir`      — dump the lowered PIR of the given sources.
//! * `fsm`     — print every built-in checker's FSM (paper Table 2/7).
//!
//! Unknown flags (and flags that don't apply to the given command) are
//! rejected with a non-zero exit and the usage text.

use pata::core::json::JsonValue;
use pata::core::{
    AliasMode, AnalysisConfig, AnalysisRequest, AnalysisSession, BugKind, FaultPlan, ServeOptions,
    SessionOutcome,
};
use pata::corpus::{Corpus, OsProfile};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "analyze" => cmd_analyze(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "corpus" => cmd_corpus(rest),
        "ir" => cmd_ir(rest),
        "fsm" => cmd_fsm(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pata: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  pata analyze <file.c>... [analysis knobs] [--store PATH] [--json]
               [--stats] [--stats-json PATH] [--profile]
  pata serve   [analysis knobs] [--store PATH] [--stats-json PATH]
               (--socket PATH | --stdio)
  pata client  --socket PATH [--op analyze|ping|stats|shutdown] [--id ID]
               [<file.c>...]
  pata corpus <linux|zephyr|riot|tencent> [--scale F] [--seed N] --out DIR
  pata ir <file.c>...
  pata fsm

analysis knobs (analyze and serve):
  --checkers LIST         comma-separated checker set; any of
                          npd,uva,ml,dl,aiu,dbz,uaf (default npd,uva,ml)
  --na                    disable the path-based alias analysis (PATA-NA)
  --no-validate           skip stage-2 SMT path validation
  --no-validation-cache   disable the cross-root validation verdict cache
  --resolve-fptrs         resolve function-pointer calls to all candidates
  --loops N               loop unrolling bound (default 2)
  --threads N             worker threads for stage-1 exploration (0 = auto)
  --no-exploration-cache  disable stage-1 fingerprint subsumption reuse
  --no-callee-memo        disable the callee summary memo
  --fork-depth N          depth of speculative exploration forks (default 2)
  --no-cow-state          fork branch state by deep clone instead of the
                          copy-on-write undo journal (differential oracle)

fault containment (analyze and serve):
  --root-deadline-ms N    per-root wall-clock deadline; a root that
                          exceeds it is demoted to a bounded re-run, and
                          quarantined if that trips again (0 = off)
  --max-live-bytes N      per-root live path-state ceiling in bytes,
                          checked at fork points (0 = off)
  --fault-plan SPEC       deterministic fault injection, e.g.
                          `explore:probe_a@1,store.save,seed=7`; see the
                          pata-core faultinject docs for the grammar

persistence:
  --store PATH            versioned on-disk store for warm restarts; loads
                          cached per-root results + validation verdicts,
                          re-analyzes only roots reachable from changed
                          functions, writes the refreshed store back

serve/client:
  --socket PATH           unix socket the daemon listens on / the client
                          connects to
  --stdio                 serve newline-delimited JSON on stdin/stdout
                          instead of a socket
  --op OP                 client request op: analyze (default when files
                          are given), ping, stats, or shutdown
  --id ID                 client request id echoed in the response
  --raw LINE              client: send LINE verbatim as the request frame
                          (for protocol testing; exit reflects `ok`)
  --max-request-bytes N   serve: longest accepted request line; longer
                          frames get an error response (default 8388608,
                          0 = unlimited)
  --request-timeout-ms N  serve (socket only): per-request reply deadline;
                          slower requests get a timeout error (0 = off)

output (analyze):
  --json                  print the versioned report document
  --stats                 print analysis counters to stderr
  --stats-json PATH       write the telemetry snapshot as JSON (for serve:
                          written when the daemon shuts down)
  --profile               print a telemetry profile table to stderr";

/// Flags shared by `analyze` and `serve`: `(name, takes_value)`.
const CONFIG_FLAGS: &[(&str, bool)] = &[
    ("checkers", true),
    ("na", false),
    ("no-validate", false),
    ("no-validation-cache", false),
    ("resolve-fptrs", false),
    ("loops", true),
    ("threads", true),
    ("no-exploration-cache", false),
    ("no-callee-memo", false),
    ("fork-depth", true),
    ("no-cow-state", false),
    ("root-deadline-ms", true),
    ("max-live-bytes", true),
    ("fault-plan", true),
];

const ANALYZE_FLAGS: &[(&str, bool)] = &[
    ("store", true),
    ("json", false),
    ("stats", false),
    ("stats-json", true),
    ("profile", false),
];

const SERVE_FLAGS: &[(&str, bool)] = &[
    ("store", true),
    ("socket", true),
    ("stdio", false),
    ("stats-json", true),
    ("max-request-bytes", true),
    ("request-timeout-ms", true),
];

const CLIENT_FLAGS: &[(&str, bool)] =
    &[("socket", true), ("op", true), ("id", true), ("raw", true)];

const CORPUS_FLAGS: &[(&str, bool)] = &[("scale", true), ("seed", true), ("out", true)];

/// Levenshtein edit distance — powers "did you mean" flag suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest known flag to a mistyped one, if it is close enough to be
/// a plausible typo (distance at most a third of the flag's length, and
/// never more than 3).
fn nearest_flag(name: &str, allowed: &[&[(&str, bool)]]) -> Option<String> {
    allowed
        .iter()
        .flat_map(|set| set.iter())
        .map(|&(n, _)| (edit_distance(name, n), n))
        .min()
        .filter(|&(d, n)| d <= 3.min(n.len().max(name.len()) / 3 + 1))
        .map(|(_, n)| n.to_owned())
}

/// Splits `args` into positional arguments and flags, rejecting any flag
/// not in the allowlists. An unknown flag is a hard error (non-zero exit)
/// naming the offending flag, with a nearest-match suggestion when one is
/// plausible.
fn split_args(
    args: &[String],
    allowed: &[&[(&str, bool)]],
) -> Result<(Vec<String>, Vec<(String, Option<String>)>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let Some(&(_, takes_value)) = allowed
                .iter()
                .flat_map(|set| set.iter())
                .find(|(n, _)| *n == name)
            else {
                let hint = nearest_flag(name, allowed)
                    .map(|n| format!(" (did you mean `--{n}`?)"))
                    .unwrap_or_default();
                return Err(format!("unknown flag `--{name}`{hint}\n{USAGE}"));
            };
            let value = if takes_value {
                Some(
                    it.next()
                        .ok_or_else(|| format!("--{name} expects a value"))?
                        .clone(),
                )
            } else {
                None
            };
            flags.push((name.to_owned(), value));
        } else if a.starts_with('-') && a.len() > 1 {
            return Err(format!("unknown flag `{a}`\n{USAGE}"));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, Option<String>)], name: &str) -> Option<&'a Option<String>> {
    flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn parse_checkers(spec: &str) -> Result<Vec<BugKind>, String> {
    spec.split(',')
        .map(|s| match s.trim().to_ascii_lowercase().as_str() {
            "npd" => Ok(BugKind::NullPointerDeref),
            "uva" => Ok(BugKind::UninitVarAccess),
            "ml" => Ok(BugKind::MemoryLeak),
            "dl" => Ok(BugKind::DoubleLock),
            "aiu" => Ok(BugKind::ArrayIndexUnderflow),
            "dbz" => Ok(BugKind::DivisionByZero),
            "uaf" => Ok(BugKind::UseAfterFree),
            "all" => Err("use --checkers npd,uva,ml,dl,aiu,dbz,uaf".to_owned()),
            other => Err(format!("unknown checker `{other}`")),
        })
        .collect()
}

/// Builds an [`AnalysisConfig`] from the shared analysis knobs.
fn build_config(
    flags: &[(String, Option<String>)],
    telemetry: bool,
) -> Result<AnalysisConfig, String> {
    let mut builder = AnalysisConfig::builder().telemetry(telemetry);
    if let Some(Some(spec)) = flag(flags, "checkers") {
        builder = builder.checkers(parse_checkers(spec)?);
    }
    if flag(flags, "na").is_some() {
        builder = builder.alias_mode(AliasMode::None);
    }
    if flag(flags, "no-validate").is_some() {
        builder = builder.validate_paths(false);
    }
    if flag(flags, "no-validation-cache").is_some() {
        builder = builder.validation_cache(false);
    }
    if flag(flags, "resolve-fptrs").is_some() {
        builder = builder.resolve_fptrs(true);
    }
    if let Some(Some(n)) = flag(flags, "loops") {
        builder =
            builder.loop_iterations(n.parse().map_err(|_| format!("bad --loops value `{n}`"))?);
    }
    if let Some(Some(n)) = flag(flags, "threads") {
        builder = builder.threads(
            n.parse()
                .map_err(|_| format!("bad --threads value `{n}`"))?,
        );
    }
    if flag(flags, "no-exploration-cache").is_some() {
        builder = builder.exploration_cache(false);
    }
    if flag(flags, "no-callee-memo").is_some() {
        builder = builder.callee_memo(false);
    }
    if let Some(Some(n)) = flag(flags, "fork-depth") {
        builder = builder.fork_depth(
            n.parse()
                .map_err(|_| format!("bad --fork-depth value `{n}`"))?,
        );
    }
    if flag(flags, "no-cow-state").is_some() {
        builder = builder.cow_state(false);
    }
    if let Some(Some(n)) = flag(flags, "root-deadline-ms") {
        builder = builder.root_deadline_ms(
            n.parse()
                .map_err(|_| format!("bad --root-deadline-ms value `{n}`"))?,
        );
    }
    if let Some(Some(n)) = flag(flags, "max-live-bytes") {
        builder = builder.max_live_bytes(
            n.parse()
                .map_err(|_| format!("bad --max-live-bytes value `{n}`"))?,
        );
    }
    if let Some(Some(spec)) = flag(flags, "fault-plan") {
        let plan = FaultPlan::parse(spec).map_err(|e| format!("bad --fault-plan: {e}"))?;
        builder = builder.fault_plan(Arc::new(plan));
    }
    builder
        .build()
        .map_err(|e| format!("bad configuration: {e}"))
}

/// Reads `files` into an [`AnalysisRequest`] (the session compiles them).
fn read_request(files: &[String]) -> Result<AnalysisRequest, String> {
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    let mut request = AnalysisRequest::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        request = request.file(f.as_str(), text);
    }
    Ok(request)
}

fn open_session(
    flags: &[(String, Option<String>)],
    telemetry: bool,
) -> Result<AnalysisSession, String> {
    let config = build_config(flags, telemetry)?;
    Ok(match flag(flags, "store").cloned().flatten() {
        Some(path) => AnalysisSession::open(config, path),
        None => AnalysisSession::new(config),
    })
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_args(args, &[CONFIG_FLAGS, ANALYZE_FLAGS])?;
    let stats_json = flag(&flags, "stats-json").cloned().flatten();
    let profile = flag(&flags, "profile").is_some();
    let mut session = open_session(&flags, stats_json.is_some() || profile)?;
    let request = read_request(&files)?;
    let SessionOutcome {
        report,
        stats,
        telemetry,
        incremental,
    } = session.analyze(&request).map_err(|e| e.to_string())?;

    if flag(&flags, "json").is_some() {
        println!("{}", report.to_json());
    } else {
        for r in &report.reports {
            println!("{r}");
        }
        if report.reports.is_empty() {
            println!("no bugs found");
        }
    }
    if flag(&flags, "stats").is_some() {
        let s = &stats;
        eprintln!(
            "roots: {}  paths: {}  insts: {}",
            s.roots, s.paths_explored, s.insts_processed
        );
        eprintln!(
            "typestates aware/unaware: {}/{}  constraints aware/unaware: {}/{}",
            s.typestates_aware, s.typestates_unaware, s.constraints_aware, s.constraints_unaware
        );
        eprintln!(
            "dropped repeated: {}  dropped false: {}  reported: {}  time: {:?}",
            s.repeated_bugs_dropped, s.false_bugs_dropped, s.reported, s.time
        );
        eprintln!(
            "validation cache hits/misses: {}/{}  scope reuse: {}  work steals: {}",
            s.validation_cache_hits,
            s.validation_cache_misses,
            s.validation_scope_reuse,
            s.work_steals
        );
        eprintln!(
            "exploration cache hits: {}  callee memo hits: {}  live steps: {} ({} replayed)",
            s.exploration_cache_hits,
            s.callee_memo_hits,
            s.live_steps(),
            s.insts_replayed
        );
        eprintln!(
            "roots dirty/clean: {}/{}  changed functions: {}  warm start: {}",
            incremental.dirty_roots,
            incremental.clean_roots,
            incremental.changed_functions,
            incremental.warm_start
        );
    }
    if let Some(path) = stats_json {
        std::fs::write(&path, telemetry.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if profile {
        eprint!("{}", telemetry.render_profile(10));
        for note in &report.budget_notes {
            eprintln!(
                "budget exhausted: root {} ({}){}",
                note.root,
                note.reason,
                if note.caches_disabled {
                    ""
                } else {
                    " [re-run with caches off]"
                }
            );
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_args(args, &[CONFIG_FLAGS, SERVE_FLAGS])?;
    if let Some(extra) = positional.first() {
        return Err(format!(
            "serve takes no positional arguments (got `{extra}`)"
        ));
    }
    let stats_json = flag(&flags, "stats-json").cloned().flatten();
    let socket = flag(&flags, "socket").cloned().flatten();
    let stdio = flag(&flags, "stdio").is_some();
    if socket.is_some() == stdio {
        return Err("serve needs exactly one of --socket PATH or --stdio".to_owned());
    }
    let mut options = ServeOptions::default();
    if let Some(Some(n)) = flag(&flags, "max-request-bytes") {
        options.max_request_bytes = n
            .parse()
            .map_err(|_| format!("bad --max-request-bytes value `{n}`"))?;
    }
    if let Some(Some(n)) = flag(&flags, "request-timeout-ms") {
        options.request_timeout_ms = n
            .parse()
            .map_err(|_| format!("bad --request-timeout-ms value `{n}`"))?;
    }
    let mut session = open_session(&flags, stats_json.is_some())?;

    let (snapshot, totals) = if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let totals =
            pata::core::serve_loop_with(&mut session, stdin.lock(), stdout.lock(), options)
                .map_err(|e| format!("serve: {e}"))?;
        (session.telemetry().snapshot(), totals)
    } else {
        #[cfg(unix)]
        {
            let socket = socket.expect("checked above");
            eprintln!("pata serve: listening on {socket}");
            let (session, totals) =
                pata::core::serve_unix_with(session, std::path::Path::new(&socket), options)
                    .map_err(|e| format!("serve: {e}"))?;
            (session.telemetry().snapshot(), totals)
        }
        #[cfg(not(unix))]
        {
            return Err("--socket requires a unix platform; use --stdio".to_owned());
        }
    };
    eprintln!(
        "pata serve: handled {} requests ({} analyzed, {} errors), {} dirty / {} clean roots",
        totals.requests, totals.analyzed, totals.errors, totals.dirty_roots, totals.clean_roots
    );
    if let Some(path) = stats_json {
        std::fs::write(&path, snapshot.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_args(args, &[CLIENT_FLAGS])?;
    let Some(Some(_socket)) = flag(&flags, "socket") else {
        return Err("--socket PATH is required".to_owned());
    };
    let op = flag(&flags, "op")
        .cloned()
        .flatten()
        .unwrap_or_else(|| if files.is_empty() { "ping" } else { "analyze" }.to_owned());
    let id = flag(&flags, "id")
        .cloned()
        .flatten()
        .unwrap_or_else(|| "0".to_owned());
    let id_json = if id.parse::<i64>().is_ok() {
        id
    } else {
        pata::core::json::quote(&id)
    };
    let line = if let Some(Some(raw)) = flag(&flags, "raw") {
        if !files.is_empty() || flag(&flags, "op").is_some() {
            return Err("--raw replaces the request; drop --op and input files".to_owned());
        }
        raw.clone()
    } else {
        match op.as_str() {
            "analyze" => {
                let request = read_request(&files)?;
                let mut parts = Vec::new();
                for f in request.files {
                    parts.push(format!(
                        "{{\"name\": {}, \"text\": {}}}",
                        pata::core::json::quote(&f.name),
                        pata::core::json::quote(&f.text)
                    ));
                }
                format!(
                    "{{\"id\": {id_json}, \"op\": \"analyze\", \"files\": [{}]}}",
                    parts.join(", ")
                )
            }
            "ping" | "stats" | "shutdown" => {
                if !files.is_empty() {
                    return Err(format!("--op {op} takes no input files"));
                }
                format!("{{\"id\": {id_json}, \"op\": \"{op}\"}}")
            }
            other => return Err(format!("unknown --op `{other}`")),
        }
    };
    #[cfg(unix)]
    {
        let socket = flag(&flags, "socket")
            .cloned()
            .flatten()
            .expect("checked above");
        let response = pata::core::client_request(std::path::Path::new(&socket), &line)
            .map_err(|e| format!("client: {e}"))?;
        println!("{response}");
        let ok = JsonValue::parse(&response)
            .ok()
            .and_then(|doc| doc.get("ok").and_then(JsonValue::as_bool))
            .unwrap_or(false);
        if ok {
            Ok(())
        } else {
            Err("daemon reported an error".to_owned())
        }
    }
    #[cfg(not(unix))]
    {
        let _ = line;
        Err("pata client requires a unix platform".to_owned())
    }
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_args(args, &[CORPUS_FLAGS])?;
    let which = positional.first().map(String::as_str).unwrap_or("zephyr");
    let mut profile = match which {
        "linux" => OsProfile::linux(),
        "zephyr" => OsProfile::zephyr(),
        "riot" => OsProfile::riot(),
        "tencent" => OsProfile::tencent(),
        other => return Err(format!("unknown OS model `{other}`")),
    };
    if let Some(Some(s)) = flag(&flags, "scale") {
        profile = profile.with_scale(s.parse().map_err(|_| format!("bad --scale `{s}`"))?);
    }
    if let Some(Some(s)) = flag(&flags, "seed") {
        profile = profile.with_seed(s.parse().map_err(|_| format!("bad --seed `{s}`"))?);
    }
    let Some(Some(out_dir)) = flag(&flags, "out") else {
        return Err("--out DIR is required".to_owned());
    };

    let corpus = Corpus::generate(&profile);
    let root = std::path::Path::new(out_dir);
    for file in &corpus.files {
        let path = root.join(&file.path);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&path, &file.text).map_err(|e| e.to_string())?;
    }
    // Ground-truth manifest as JSON.
    let manifest_path = root.join("manifest.json");
    let mut f = std::fs::File::create(&manifest_path).map_err(|e| e.to_string())?;
    f.write_all(corpus.manifest.to_json().as_bytes())
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} files ({} LOC), {} bugs, {} traps -> {}",
        corpus.files.len(),
        corpus.loc(),
        corpus.manifest.bugs.len(),
        corpus.manifest.traps.len(),
        out_dir
    );
    Ok(())
}

fn cmd_ir(args: &[String]) -> Result<(), String> {
    let (files, _) = split_args(args, &[])?;
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    let mut cc = pata::cc::Compiler::new();
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        cc.add_source(f, &text);
    }
    let module = cc.compile().map_err(|diags| {
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    print!("{}", pata_ir::print_module(&module));
    Ok(())
}

fn cmd_fsm(args: &[String]) -> Result<(), String> {
    let (positional, _) = split_args(args, &[])?;
    if let Some(extra) = positional.first() {
        return Err(format!("fsm takes no arguments (got `{extra}`)"));
    }
    for kind in BugKind::ALL {
        let checker = kind.instantiate();
        let fsm = checker.fsm();
        println!("{} ({})", kind.as_str(), kind.abbrev());
        println!("  states: {}", fsm.states.join(", "));
        println!("  events: {}", fsm.events.join(", "));
        println!("  bug state: {}", fsm.bug_state);
    }
    Ok(())
}
