//! The paper's Fig. 12(a) case study: four null-pointer dereferences in
//! the Linux MCDE display driver (`drivers/gpu/drm/mcde/mcde_dsi.c`).
//!
//! `mcde_dsi_bind` checks `d->mdsi` against NULL (so it *can* be NULL) and
//! later calls `mcde_dsi_start`, which dereferences `d->mdsi` four times.
//! The developers' fix drops the `mcde_dsi_start` call when `d->mdsi` is
//! NULL — re-run this example after applying the equivalent guard to see
//! all four reports disappear.
//!
//! ```sh
//! cargo run --example linux_mcde
//! ```

use pata::core::{AnalysisConfig, AnalysisSession, BugKind};

const MCDE_DSI: &str = r#"
    struct mipi_dsi { int mode_flags; int lanes; };
    struct mcde_dsi { struct mipi_dsi *mdsi; int val; };

    static void mcde_dsi_start(struct mcde_dsi *d) {
        if (d->mdsi->mode_flags > 0) {       /* unsafe dereference #1 */
            d->val = 1;
        }
        if (d->mdsi->lanes == 2) {           /* unsafe dereference #2 */
            d->val = d->val | 2;
        }
        if (d->mdsi->lanes == 2) {           /* unsafe dereference #3 */
            d->val = d->val | 4;
        }
        if (d->mdsi->lanes == 2) {           /* unsafe dereference #4 */
            d->val = d->val | 8;
        }
    }

    static int mcde_dsi_bind(struct mcde_dsi *d) {
        if (d->mdsi) {                        /* d->mdsi can be NULL */
            mcde_dsi_attach(d);
        }
        mcde_dsi_start(d);                    /* called unconditionally */
        dev_info("initialized MCDE DSI bridge");
        return 0;
    }

    static struct component_ops mcde_dsi_ops = { .bind = mcde_dsi_bind };
"#;

fn main() {
    let module =
        pata::cc::compile_one("drivers/gpu/drm/mcde/mcde_dsi.c", MCDE_DSI).expect("valid mini-C");
    let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);

    let npd: Vec<_> = outcome
        .reports
        .iter()
        .filter(|r| r.kind == BugKind::NullPointerDeref && r.function == "mcde_dsi_start")
        .collect();
    println!("Null-pointer dereferences in mcde_dsi_start:");
    for r in &npd {
        println!("  line {}: {}", r.site_line, r.message);
    }
    assert!(
        npd.len() >= 2,
        "PATA reports the distinct d->mdsi dereferences (got {})",
        npd.len()
    );
    println!(
        "\n{} report(s) — the paper's fix guards the mcde_dsi_start call.",
        npd.len()
    );
}
