//! Registering an **out-of-tree checker plugin** through the open
//! [`CheckerRegistry`] API.
//!
//! Where `examples/custom_checker.rs` hands `Pata::analyze_with` a
//! ready-made checker list, this example goes through the registry — the
//! same construction path the seven built-ins use: implement
//! [`CheckerFactory`], `register()` it, and every `Pata::analyze` call on
//! the analyzer runs the plugin alongside the configured built-ins.
//!
//! The plugin is a strict double-unlock checker. The built-in lock checker
//! forgives a bare `unlock` in the start state (the lock may be caller
//! held); module-local spinlocks have no outside callers, so this plugin
//! flags *any* unlock not preceded by a lock on the same alias set.
//!
//! ```sh
//! cargo run --example double_unlock_plugin
//! ```

use pata::core::checkers::BugKind;
use pata::core::typestate::{Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata::core::{AnalysisConfig, AnalysisSession, CheckerFactory, CheckerRegistry};
use pata_ir::InstKind;

const S_LOCKED: u8 = 1;
const S_UNLOCKED: u8 = 2;

/// FSM: S0 --unlock--> bug; S0/UNLOCKED --lock--> LOCKED;
///      LOCKED --unlock--> UNLOCKED; UNLOCKED --unlock--> bug.
struct StrictDoubleUnlockChecker;

impl Checker for StrictDoubleUnlockChecker {
    fn kind(&self) -> BugKind {
        // An example plugin piggybacks on an unused built-in slot rather
        // than extending BugKind; a production checker would add a variant.
        BugKind::DoubleLock
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "LOCKED", "UNLOCKED", "SBUG"],
            events: vec!["lock", "unlock"],
            bug_state: "SBUG",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.kind().id();
        let Some(key) = info.lock_key else { return };
        match inst {
            InstKind::Lock { .. } => {
                let prior = cx.state(id, key);
                cx.transition(id, key, S_LOCKED, prior);
            }
            InstKind::Unlock { .. } => match cx.state(id, key) {
                Some(entry) if entry.state == S_LOCKED => {
                    cx.transition(id, key, S_UNLOCKED, Some(entry));
                }
                prior => {
                    // Unlock in S0 or UNLOCKED: strict policy says bug.
                    if let Some(entry) = prior {
                        cx.report(self.kind(), key, entry, Vec::new());
                    }
                }
            },
            _ => {}
        }
    }
}

/// The factory the registry stores. Its id is not a built-in slug, so the
/// registry's selection policy always runs it.
struct StrictDoubleUnlockFactory;

impl CheckerFactory for StrictDoubleUnlockFactory {
    fn id(&self) -> &str {
        "strict-double-unlock"
    }

    fn description(&self) -> &str {
        "reports any unlock not preceded by a lock on the same alias set"
    }

    fn create(&self) -> Box<dyn Checker> {
        Box::new(StrictDoubleUnlockChecker)
    }
}

fn main() {
    let source = r#"
        struct dev { int lock; int count; };
        static void irq_bad(struct dev *d) {
            spin_lock(&d->lock);
            d->count = d->count + 1;
            spin_unlock(&d->lock);
            spin_unlock(&d->lock);          /* double unlock */
        }
        static void irq_good(struct dev *d) {
            spin_lock(&d->lock);
            d->count = d->count + 1;
            spin_unlock(&d->lock);
        }
        static struct irq_ops ops = { .h1 = irq_bad, .h2 = irq_good };
    "#;
    let module = pata::cc::compile_one("drivers/irq_demo.c", source).expect("valid mini-C");

    let mut registry = CheckerRegistry::with_builtins();
    registry
        .register(Box::new(StrictDoubleUnlockFactory))
        .expect("plugin id is free");
    println!("registered checkers: {:?}", registry.ids());

    // Select only the NPD built-in: the double-unlock report below can
    // therefore only come from the plugin, which runs regardless of the
    // `checkers` selection.
    let config = AnalysisConfig::builder()
        .checkers(vec![BugKind::NullPointerDeref])
        .build()
        .expect("valid config");
    let outcome = AnalysisSession::with_registry(config, registry).analyze_module(module);

    println!("\nplugin reports:");
    for r in &outcome.reports {
        println!("  `{}` line {}: {}", r.function, r.site_line, r.message);
    }
    assert_eq!(outcome.reports.len(), 1);
    assert_eq!(outcome.reports[0].function, "irq_bad");
    println!("\nA factory + register() = an out-of-tree checker, no core patch.");
}
