//! Authoring a custom typestate checker on the public API — the paper's
//! generality claim (§5.5): "PATA can conveniently detect different types
//! of OS bugs with different checkers … each implemented with just 100-200
//! lines of code".
//!
//! This example writes an **unchecked-allocation** checker (not one of the
//! seven built-ins) in ~70 lines: `kmalloc` can fail, so dereferencing its
//! result before *any* NULL test is a kernel-style bug. Thanks to the
//! alias-aware state sharing, checking one alias clears the whole set.
//!
//! ```sh
//! cargo run --example custom_checker
//! ```

use pata::core::checkers::BugKind;
use pata::core::typestate::{BranchEvent, Checker, FsmSpec, TrackCtx, UpdateInfo};
use pata::core::{AnalysisConfig, AnalysisSession};
use pata_ir::InstKind;

/// FSM: S0 --malloc--> UNCHECKED --null-test--> CHECKED;
///      UNCHECKED --deref--> bug.
struct UncheckedAllocChecker;

const S_UNCHECKED: u8 = 1;
const S_CHECKED: u8 = 2;

impl Checker for UncheckedAllocChecker {
    fn kind(&self) -> BugKind {
        // An example checker piggybacks on an unused built-in slot rather
        // than extending BugKind; a production checker would add a variant.
        BugKind::DoubleLock
    }

    fn fsm(&self) -> FsmSpec {
        FsmSpec {
            states: vec!["S0", "UNCHECKED", "CHECKED", "SBUG"],
            events: vec!["malloc", "null_test", "deref"],
            bug_state: "SBUG",
        }
    }

    fn on_inst(&self, cx: &mut TrackCtx<'_>, inst: &InstKind, info: &UpdateInfo) {
        let id = self.kind().id();
        if let InstKind::Malloc { .. } = inst {
            if let Some(key) = info.dst_key {
                cx.transition(id, key, S_UNCHECKED, None);
            }
        }
        if let Some(key) = info.deref_key {
            if let Some(entry) = cx.state(id, key) {
                if entry.state == S_UNCHECKED {
                    cx.report(self.kind(), key, entry, Vec::new());
                    cx.transition(id, key, S_CHECKED, Some(entry));
                }
            }
        }
    }

    fn on_branch(&self, cx: &mut TrackCtx<'_>, ev: &BranchEvent) {
        // Any comparison of the pointer against NULL counts as a check,
        // whichever way the branch goes.
        if !ev.lhs_is_pointer || ev.rhs.as_const() != Some(0) {
            return;
        }
        let id = self.kind().id();
        if let Some(key) = ev.lhs.key() {
            if let Some(entry) = cx.state(id, key) {
                if entry.state == S_UNCHECKED {
                    cx.transition(id, key, S_CHECKED, Some(entry));
                }
            }
        }
    }
}

fn main() {
    let source = r#"
        struct pkt { int len; };
        static int rx_bad(int n) {
            struct pkt *p = kmalloc(n);
            return p->len;                  /* deref before any check */
        }
        static int rx_good(int n) {
            struct pkt *q = kmalloc(n);
            if (q == NULL) {
                return -1;
            }
            int len = q->len;               /* checked first: fine */
            kfree(q);
            return len;
        }
        static struct net_ops ops = { .rx1 = rx_bad, .rx2 = rx_good };
    "#;
    let module = pata::cc::compile_one("net/rx_demo.c", source).expect("valid mini-C");

    let checkers: Vec<Box<dyn Checker>> = vec![Box::new(UncheckedAllocChecker)];
    let outcome =
        AnalysisSession::new(AnalysisConfig::default()).analyze_module_with(module, &checkers);

    println!("Unchecked-allocation checker reports:");
    for r in &outcome.reports {
        println!(
            "  `{}` line {}: allocation dereferenced before a NULL check",
            r.function, r.site_line
        );
    }
    assert_eq!(outcome.reports.len(), 1);
    assert_eq!(outcome.reports[0].function, "rx_bad");
    println!("\nOne FSM + the existing alias machinery = a new kernel checker.");
}
