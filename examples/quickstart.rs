//! Quickstart: compile a mini-C snippet and run the full PATA pipeline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pata::core::{AnalysisConfig, AnalysisSession};

fn main() {
    // A buggy driver probe: the resource pointer is checked against NULL,
    // but the error path falls through to the dereference (paper Fig. 1).
    let source = r#"
        struct resource { int start; };
        struct my_dev { struct resource *res; int state; };

        static int my_probe(struct my_dev *dev) {
            if (dev->res == NULL) {
                log_warn("no MMIO resource");
            }
            return dev->res->start;      /* null-pointer dereference */
        }

        static int my_remove(struct my_dev *dev) {
            if (dev->res == NULL) {
                return -1;               /* properly guarded */
            }
            dev->res->start = 0;
            return 0;
        }

        static struct platform_driver my_driver = {
            .probe = my_probe,
            .remove = my_remove,
        };
    "#;

    let module =
        pata::cc::compile_one("drivers/my_dev.c", source).expect("the snippet is valid mini-C");

    let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);

    println!(
        "PATA analyzed {} paths across {} interface functions\n",
        outcome.stats.paths_explored, outcome.stats.roots
    );
    for report in &outcome.reports {
        println!("  {report}");
    }
    println!(
        "\n{} possible bug(s); {} false candidate(s) dropped by path validation",
        outcome.reports.len(),
        outcome.stats.false_bugs_dropped
    );
    assert_eq!(outcome.reports.len(), 1, "only my_probe is buggy");
    assert_eq!(outcome.reports[0].function, "my_probe");
}
