//! Full-pipeline scan of a generated OS corpus: generate → compile →
//! analyze → score against ground truth — the workload behind Tables 4/5.
//!
//! ```sh
//! cargo run --release --example os_scan            # Zephyr model
//! cargo run --release --example os_scan -- linux 0.3
//! ```

use pata::core::{AnalysisConfig, AnalysisSession};
use pata::corpus::{Corpus, OsProfile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("zephyr");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let profile = match which {
        "linux" => OsProfile::linux(),
        "riot" => OsProfile::riot(),
        "tencent" => OsProfile::tencent(),
        _ => OsProfile::zephyr(),
    }
    .with_scale(scale);

    println!("Generating the {} model at scale {scale}…", profile.name);
    let corpus = Corpus::generate(&profile);
    println!(
        "  {} files, {} LOC, {} injected bugs, {} FP traps",
        corpus.files.len(),
        corpus.loc(),
        corpus.manifest.bugs.len(),
        corpus.manifest.traps.len()
    );

    let module = corpus.compile().expect("generated corpus compiles");
    println!("  compiled into {} PIR functions", module.functions().len());

    let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(module);
    let s = &outcome.stats;
    println!("\nAnalysis (paper Table 5 counters):");
    println!("  interface-function roots : {}", s.roots);
    println!("  paths explored           : {}", s.paths_explored);
    println!(
        "  typestates aware/unaware : {}/{}",
        s.typestates_aware, s.typestates_unaware
    );
    println!(
        "  constraints aware/unaware: {}/{}",
        s.constraints_aware, s.constraints_unaware
    );
    println!("  repeated bugs dropped    : {}", s.repeated_bugs_dropped);
    println!("  false bugs dropped       : {}", s.false_bugs_dropped);
    println!("  wall time                : {:?}", s.time);

    let score = corpus.manifest.score(&outcome.reports);
    println!("\nScoring against ground truth:");
    println!(
        "  found: {}  real: {}  FPs: {}  missed: {}",
        score.total_found(),
        score.total_real(),
        score.false_positives,
        score.missed
    );
    println!(
        "  false-positive rate: {:.1}% (paper: 28%)",
        100.0 * score.false_positive_rate()
    );

    println!("\nSample reports:");
    for r in outcome.reports.iter().take(8) {
        println!("  {r}");
    }
}
