//! The paper's motivating bug (Fig. 3): a real null-pointer dereference in
//! the Zephyr Bluetooth mesh subsystem (`subsys/bluetooth/cfg_srv.c`),
//! undetected for ~3 years and fixed after PATA reported it.
//!
//! The NULL check happens in `friend_set` on its local `cfg`; the
//! dereference happens in `send_friend_status` on *its* local `cfg`. The
//! two are aliases only because both load the same `model->user_data`
//! field — which PATA's path-based alias analysis tracks across the call,
//! and which defeats points-to analysis (the `model` parameter of a module
//! interface function has an empty points-to set) and intraprocedural
//! pattern matching (two different functions). This example runs both PATA
//! and PATA-NA to show the difference.
//!
//! ```sh
//! cargo run --example zephyr_friend_set
//! ```

use pata::core::{AnalysisConfig, AnalysisSession, BugKind};

const CFG_SRV: &str = r#"
    struct bt_mesh_cfg_srv { int frnd; int relay; };
    struct bt_mesh_model { struct bt_mesh_cfg_srv *user_data; int id; };

    static void send_friend_status(struct bt_mesh_model *model) {
        struct bt_mesh_cfg_srv *cfg = model->user_data;   /* alias */
        net_buf_simple_add_u8(cfg->frnd);                 /* unsafe deref! */
    }

    static void friend_set(struct bt_mesh_model *model) {
        struct bt_mesh_cfg_srv *cfg = model->user_data;   /* alias */
        if (!cfg) {
            bt_warn("no config server");
            goto send_status;
        }
        cfg->frnd = 1;
        return;
    send_status:
        send_friend_status(model);
    }

    static struct bt_mesh_model_op cfg_srv_op = { .set = friend_set };
"#;

fn main() {
    let compile =
        || pata::cc::compile_one("subsys/bluetooth/cfg_srv.c", CFG_SRV).expect("valid mini-C");

    println!("== PATA (path-based alias analysis) ==");
    let outcome = AnalysisSession::new(AnalysisConfig::default()).analyze_module(compile());
    for r in &outcome.reports {
        println!("  {r}");
    }
    let found = outcome
        .reports
        .iter()
        .any(|r| r.kind == BugKind::NullPointerDeref && r.function == "send_friend_status");
    assert!(found, "PATA must find the Fig. 3 bug");
    println!("  -> found the cross-function alias bug\n");

    println!("== PATA-NA (no alias relationships, Table 6) ==");
    let na = AnalysisSession::new(AnalysisConfig::without_alias()).analyze_module(compile());
    let na_found = na
        .reports
        .iter()
        .any(|r| r.kind == BugKind::NullPointerDeref && r.function == "send_friend_status");
    println!(
        "  {} report(s); cross-function bug found: {}",
        na.reports.len(),
        na_found
    );
    assert!(!na_found, "without alias analysis the bug is invisible");
    println!("  -> missed, as the paper's sensitivity study predicts");
}
